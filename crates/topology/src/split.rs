use crate::{NodeId, SourceMode, Topology, TopologyError};

/// Result of [`split_degree_four`]: the binarized topology plus the list of
/// edges whose length must be *fixed to zero* in the EBF (the paper sets the
/// splitting edge's length to 0 so the transformation cannot change the
/// optimum).
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The transformed topology (every Steiner point of degree 3).
    pub topology: Topology,
    /// Edge identifiers (child nodes) of the inserted zero-length edges.
    pub zero_edges: Vec<NodeId>,
}

/// §3 normalization: splits Steiner points of degree 4 (or more) so that
/// every Steiner point has exactly one parent and two children, inserting
/// zero-length edges between the split halves.
///
/// Sinks keep their node numbers; new Steiner points are appended after the
/// existing nodes. A root with too many children (more than 1 for
/// [`SourceMode::Given`], more than 2 for [`SourceMode::Free`]) is
/// normalized the same way.
///
/// # Errors
///
/// Propagates [`TopologyError`] if the rebuilt parent array is somehow
/// invalid (cannot happen for valid inputs).
///
/// # Example
///
/// ```
/// use lubt_topology::{split_degree_four, SourceMode, Topology};
/// // A Steiner point (node 4) with three children: degree 4.
/// let t = Topology::from_parents(3, &[0, 4, 4, 4, 0])?;
/// let r = split_degree_four(&t, SourceMode::Given)?;
/// assert!(r.topology.is_binary(SourceMode::Given));
/// assert_eq!(r.zero_edges.len(), 1);
/// # Ok::<(), lubt_topology::TopologyError>(())
/// ```
pub fn split_degree_four(topo: &Topology, mode: SourceMode) -> Result<SplitResult, TopologyError> {
    let n = topo.num_nodes();
    // Work on a mutable children representation; `usize::MAX` marks no
    // parent.
    let mut parents: Vec<usize> = (0..n)
        .map(|i| topo.parent(NodeId(i)).map_or(0, NodeId::index))
        .collect();
    let mut children: Vec<Vec<usize>> = (0..n)
        .map(|i| topo.children(NodeId(i)).map(NodeId::index).collect())
        .collect();
    let mut zero_edges = Vec::new();

    let root_cap = match mode {
        SourceMode::Given => 1,
        SourceMode::Free => 2,
    };

    // Process every node; appending new nodes extends the loop naturally.
    let mut v = 0;
    while v < children.len() {
        let cap = if v == 0 { root_cap } else { 2 };
        while children[v].len() > cap {
            // Detach the last two children and hang them under a fresh
            // Steiner point joined to `v` by a zero-length edge — exactly
            // the S -> (S1, S2) split of Figure 2, iterated for higher
            // degrees.
            let c2 = children[v].pop().expect("len > cap >= 1");
            let c1 = children[v].pop().expect("len > cap >= 1");
            let fresh = children.len();
            children.push(vec![c1, c2]);
            parents.push(v);
            parents[c1] = fresh;
            parents[c2] = fresh;
            children[v].push(fresh);
            zero_edges.push(NodeId(fresh));
        }
        v += 1;
    }

    let topology = Topology::from_parents(topo.num_sinks(), &parents)?;
    Ok(SplitResult {
        topology,
        zero_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_four_steiner_is_split_once() {
        // Root -> S4 -> {s1, s2, s3}.
        let t = Topology::from_parents(3, &[0, 4, 4, 4, 0]).unwrap();
        let r = split_degree_four(&t, SourceMode::Given).unwrap();
        assert!(r.topology.is_binary(SourceMode::Given));
        assert_eq!(r.zero_edges.len(), 1);
        assert_eq!(r.topology.num_nodes(), t.num_nodes() + 1);
        assert!(r.topology.all_sinks_are_leaves());
        // Sinks keep their numbering.
        for s in 1..=3 {
            assert!(r.topology.is_sink(NodeId(s)));
        }
    }

    #[test]
    fn star_of_many_children() {
        // Root directly over 5 sinks (degree 5 root, Given mode).
        let t = Topology::from_parents(5, &[0, 0, 0, 0, 0, 0]).unwrap();
        let r = split_degree_four(&t, SourceMode::Given).unwrap();
        assert!(r.topology.is_binary(SourceMode::Given));
        // 5 -> 1 children requires 4 fresh Steiner points.
        assert_eq!(r.zero_edges.len(), 4);
    }

    #[test]
    fn already_binary_is_untouched() {
        let t = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
        let r = split_degree_four(&t, SourceMode::Given).unwrap();
        assert_eq!(r.topology.num_nodes(), t.num_nodes());
        assert!(r.zero_edges.is_empty());
    }

    #[test]
    fn free_mode_keeps_two_root_children() {
        // Root with 3 children in source-free mode: one split.
        let t = Topology::from_parents(3, &[0, 0, 0, 0]).unwrap();
        let r = split_degree_four(&t, SourceMode::Free).unwrap();
        assert!(r.topology.is_binary(SourceMode::Free));
        assert_eq!(r.zero_edges.len(), 1);
    }

    #[test]
    fn deep_cascade() {
        // Degree-6 Steiner point: needs a chain of splits.
        let t = Topology::from_parents(5, &[0, 6, 6, 6, 6, 6, 0]).unwrap();
        let r = split_degree_four(&t, SourceMode::Given).unwrap();
        assert!(r.topology.is_binary(SourceMode::Given));
        assert_eq!(r.zero_edges.len(), 3);
        // Every sink still reachable, still a leaf.
        assert!(r.topology.all_sinks_are_leaves());
        assert_eq!(r.topology.sinks_under(NodeId(0)).len(), 5);
    }
}
