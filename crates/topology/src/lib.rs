//! Rooted routing-tree topologies and topology generators.
//!
//! The LUBT method (Oh-Pyo-Pedram, DAC 1996) takes a *topology* — the
//! connectivity of source, sinks and Steiner points — as input, and
//! optimizes the geometry. This crate provides:
//!
//! * [`Topology`] — an immutable rooted tree over `source (node 0)`,
//!   `sinks (1..=m)` and `Steiner points (m+1..)`, with traversals, depth,
//!   and O(log n) lowest-common-ancestor queries (used by the EBF's
//!   Steiner-constraint separation oracle).
//! * [`MergeTreeBuilder`] — assembles full binary merge trees bottom-up,
//!   taking care of the paper's node-numbering conventions.
//! * Topology **generators**, one per family used in the 1990s clock-routing
//!   literature the paper builds on:
//!   [`nearest_neighbor_topology`] (Edahiro-style nearest-neighbor merge, the
//!   generator family "adopted from \[9\]"), [`matching_topology`] (recursive
//!   geometric matching, Kahng-Cong-Robins DAC'91) and
//!   [`bipartition_topology`] (balanced recursive bisection,
//!   Jackson-Srinivasan-Kuh DAC'90 style).
//! * [`split_degree_four`] — the §3 transformation making every Steiner
//!   point degree 3 by splitting degree-4 nodes with a zero-length edge.
//!
//! # Example
//!
//! ```
//! use lubt_geom::Point;
//! use lubt_topology::{nearest_neighbor_topology, SourceMode};
//!
//! let sinks = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(0.0, 10.0),
//!     Point::new(10.0, 10.0),
//! ];
//! let topo = nearest_neighbor_topology(&sinks, SourceMode::Free);
//! assert_eq!(topo.num_sinks(), 4);
//! assert!(topo.all_sinks_are_leaves());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bipartition;
mod builder;
mod error;
mod matching;
mod nearest_neighbor;
mod split;
mod tree;

pub use bipartition::bipartition_topology;
pub use builder::{ClusterId, MergeTreeBuilder};
pub use error::TopologyError;
pub use matching::{matching_topology, matching_topology_with_threads};
pub use nearest_neighbor::{nearest_neighbor_topology, nearest_neighbor_topology_with_threads};
pub use split::{split_degree_four, SplitResult};
pub use tree::{NodeId, SourceMode, Topology};
