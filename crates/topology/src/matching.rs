use crate::builder::ClusterId;
use crate::{MergeTreeBuilder, SourceMode, Topology};
use lubt_geom::Point;

/// Recursive geometric-matching topology generation
/// (Kahng-Cong-Robins DAC'91 family).
///
/// At each level the current clusters are paired up by a greedy minimum
/// Manhattan-distance matching (shortest compatible pair first); each
/// matched pair merges under a Steiner point placed at the pair midpoint,
/// and an unmatched odd cluster passes through to the next level. Levels
/// repeat until a single cluster remains, yielding a balanced full binary
/// tree.
///
/// # Panics
///
/// Panics when `sinks` is empty.
///
/// # Example
///
/// ```
/// use lubt_geom::Point;
/// use lubt_topology::{matching_topology, SourceMode};
/// let sinks: Vec<Point> = (0..8).map(|i| Point::new(f64::from(i), 0.0)).collect();
/// let t = matching_topology(&sinks, SourceMode::Given);
/// assert!(t.is_binary(SourceMode::Given));
/// // Balanced: depth of every sink is log2(8) + 1 below the source.
/// for s in t.sinks() {
///     assert_eq!(t.depth(s), 4);
/// }
/// ```
pub fn matching_topology(sinks: &[Point], mode: SourceMode) -> Topology {
    matching_topology_with_threads(sinks, mode, 1)
}

/// [`matching_topology`] with each level's `O(k^2)` candidate-pair
/// generation partitioned across `threads` workers (`0` = all cores, `1` =
/// the exact sequential path).
///
/// Workers scan whole rows of the pair triangle into private buffers that
/// merge in ascending row order — the same lexicographic `(i, j)` sequence
/// the serial loop produces — and the subsequent by-distance sort is
/// stable, so ties break identically and the greedy matching (hence the
/// topology) is the same for every thread count.
///
/// # Panics
///
/// Panics when `sinks` is empty.
pub fn matching_topology_with_threads(
    sinks: &[Point],
    mode: SourceMode,
    threads: usize,
) -> Topology {
    assert!(!sinks.is_empty(), "need at least one sink");
    let m = sinks.len();
    let mut b = MergeTreeBuilder::new(m);

    let mut level: Vec<(ClusterId, Point)> = sinks
        .iter()
        .enumerate()
        .map(|(i, &p)| (b.sink(i), p))
        .collect();

    while level.len() > 1 {
        // All pairs sorted by distance; greedy disjoint selection.
        let k = level.len();
        let grain = (k / lubt_par::resolve_threads(threads).max(1) / 4).max(1);
        let row = |i: usize, out: &mut Vec<(usize, usize, f64)>| {
            for j in i + 1..k {
                out.push((i, j, level[i].1.dist(level[j].1)));
            }
        };
        let mut pairs = lubt_par::parallel_flat_map(threads, k, grain, |i, buf| row(i, buf));
        pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distance"));

        let mut used = vec![false; k];
        let mut next_level = Vec::with_capacity(k / 2 + 1);
        for (i, j, _) in pairs {
            if used[i] || used[j] {
                continue;
            }
            used[i] = true;
            used[j] = true;
            let handle = b.merge(level[i].0, level[j].0);
            next_level.push((handle, level[i].1.midpoint(level[j].1)));
        }
        // Odd cluster carries over.
        for (i, &(h, p)) in level.iter().enumerate() {
            if !used[i] {
                next_level.push((h, p));
            }
        }
        level = next_level;
    }

    let top = level[0].0;
    b.finish(top, mode)
        .expect("matching covers every sink once")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_is_perfectly_balanced() {
        let sinks: Vec<Point> = (0..16)
            .map(|i| Point::new(f64::from(i % 4), f64::from(i / 4)))
            .collect();
        let t = matching_topology(&sinks, SourceMode::Free);
        assert!(t.is_binary(SourceMode::Free));
        for s in t.sinks() {
            assert_eq!(t.depth(s), 4);
        }
    }

    #[test]
    fn odd_count_still_valid() {
        let sinks: Vec<Point> = (0..7)
            .map(|i| Point::new(f64::from(i), f64::from(i * i % 5)))
            .collect();
        let t = matching_topology(&sinks, SourceMode::Given);
        assert_eq!(t.num_sinks(), 7);
        assert!(t.all_sinks_are_leaves());
        assert!(t.is_binary(SourceMode::Given));
    }

    #[test]
    fn threads_do_not_change_the_topology() {
        // Grid points create many exact distance ties, the hard case for
        // merge-order determinism.
        let sinks: Vec<Point> = (0..25)
            .map(|i| Point::new(f64::from(i % 5), f64::from(i / 5)))
            .collect();
        for mode in [SourceMode::Free, SourceMode::Given] {
            let base = matching_topology(&sinks, mode);
            for threads in [2, 4, 8, 0] {
                let t = matching_topology_with_threads(&sinks, mode, threads);
                assert_eq!(t.num_nodes(), base.num_nodes(), "threads={threads}");
                for node in 1..t.num_nodes() {
                    assert_eq!(
                        t.parent(crate::NodeId(node)),
                        base.parent(crate::NodeId(node)),
                        "threads={threads} node={node}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_and_pair() {
        let t = matching_topology(&[Point::ORIGIN], SourceMode::Given);
        assert_eq!(t.num_nodes(), 2);
        let t = matching_topology(&[Point::ORIGIN, Point::new(1.0, 0.0)], SourceMode::Free);
        assert_eq!(t.num_sinks(), 2);
    }
}
