use crate::{NodeId, SourceMode, Topology, TopologyError};

/// Handle to a cluster (a sink or a previously merged subtree) inside a
/// [`MergeTreeBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterId(usize);

impl ClusterId {
    /// Dense handle index: sinks occupy `0..num_sinks`, merge clusters
    /// follow in creation order. Useful for algorithms carrying per-cluster
    /// side tables (edge lengths, merge regions).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Bottom-up constructor of full binary merge-tree topologies.
///
/// Every topology generator in this crate works the same way: start from
/// the `m` sinks as singleton clusters, repeatedly [`MergeTreeBuilder::merge`]
/// two clusters under a fresh Steiner point, and [`MergeTreeBuilder::finish`]
/// with the final cluster. The builder then assigns the paper's node
/// numbering (root 0, sinks `1..=m`, Steiner `m+1..`) and produces a
/// validated [`Topology`].
///
/// # Example
///
/// ```
/// use lubt_topology::{MergeTreeBuilder, SourceMode};
/// let mut b = MergeTreeBuilder::new(3);
/// let s01 = b.merge(b.sink(0), b.sink(1));
/// let top = b.merge(s01, b.sink(2));
/// let topo = b.finish(top, SourceMode::Given)?;
/// assert_eq!(topo.num_sinks(), 3);
/// assert!(topo.is_binary(SourceMode::Given));
/// # Ok::<(), lubt_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MergeTreeBuilder {
    num_sinks: usize,
    /// Children of each merge node, indexed by `cluster - num_sinks`.
    merges: Vec<(usize, usize)>,
}

impl MergeTreeBuilder {
    /// Starts a builder over `num_sinks` sinks (indexed `0..num_sinks`).
    ///
    /// # Panics
    ///
    /// Panics when `num_sinks == 0`.
    pub fn new(num_sinks: usize) -> Self {
        assert!(num_sinks > 0, "a merge tree needs at least one sink");
        MergeTreeBuilder {
            num_sinks,
            merges: Vec::new(),
        }
    }

    /// Handle for sink `index` (0-based; sink `index` becomes node
    /// `index + 1` of the finished topology).
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_sinks`.
    pub fn sink(&self, index: usize) -> ClusterId {
        assert!(index < self.num_sinks, "sink index out of range");
        ClusterId(index)
    }

    /// Merges two clusters under a fresh Steiner point and returns its
    /// handle.
    pub fn merge(&mut self, a: ClusterId, b: ClusterId) -> ClusterId {
        self.merges.push((a.0, b.0));
        ClusterId(self.num_sinks + self.merges.len() - 1)
    }

    /// Finalizes the tree with `top` as the last remaining cluster.
    ///
    /// With [`SourceMode::Given`] a dedicated source node 0 is added above
    /// `top`; with [`SourceMode::Free`] the top merge point itself becomes
    /// node 0 (the paper's source-free normal form, root of degree two).
    /// A single-sink tree is always finished in `Given` shape.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotATree`] when `top` does not contain every
    /// sink exactly once (some sink unmerged, or a cluster reused).
    pub fn finish(self, top: ClusterId, mode: SourceMode) -> Result<Topology, TopologyError> {
        self.finish_with_map(top, mode).map(|(t, _)| t)
    }

    /// Like [`MergeTreeBuilder::finish`], but also returns the mapping from
    /// every cluster handle to its node in the finished topology (`None`
    /// for clusters not under `top`). Needed by algorithms that carry
    /// per-cluster data (edge lengths, merge regions) into the tree.
    ///
    /// # Errors
    ///
    /// Same as [`MergeTreeBuilder::finish`].
    pub fn finish_with_map(
        self,
        top: ClusterId,
        mode: SourceMode,
    ) -> Result<(Topology, Vec<Option<NodeId>>), TopologyError> {
        let m = self.num_sinks;
        let n_merge = self.merges.len();
        let total_clusters = m + n_merge;
        if top.0 >= total_clusters {
            return Err(TopologyError::NotATree);
        }

        // Check coverage: descending from `top` must visit every cluster at
        // most once and every sink exactly once.
        let mut visited = vec![false; total_clusters];
        let mut stack = vec![top.0];
        let mut sink_count = 0usize;
        while let Some(c) = stack.pop() {
            if visited[c] {
                return Err(TopologyError::NotATree);
            }
            visited[c] = true;
            if c < m {
                sink_count += 1;
            } else {
                let (a, b) = self.merges[c - m];
                stack.push(a);
                stack.push(b);
            }
        }
        if sink_count != m {
            return Err(TopologyError::NotATree);
        }

        // Assign final NodeIds. Sinks: cluster i -> node i+1. Merge
        // clusters: `top` becomes node 0 in Free mode, the rest take
        // m+1.. in construction order.
        let free_top = mode == SourceMode::Free && top.0 >= m;
        let mut node_of = vec![usize::MAX; total_clusters];
        for (i, slot) in node_of.iter_mut().enumerate().take(m) {
            *slot = i + 1;
        }
        let mut next = m + 1;
        for (c, slot) in node_of.iter_mut().enumerate().skip(m) {
            if !visited[c] {
                continue;
            }
            if free_top && c == top.0 {
                *slot = 0;
            } else {
                *slot = next;
                next += 1;
            }
        }

        let num_nodes = next;
        let mut parents = vec![0usize; num_nodes];
        for c in m..total_clusters {
            if !visited[c] {
                continue;
            }
            let (a, b) = self.merges[c - m];
            parents[node_of[a]] = node_of[c];
            parents[node_of[b]] = node_of[c];
        }
        if !free_top {
            // Dedicated source above the top cluster (also the single-sink
            // degenerate case where `top` is a sink).
            parents[node_of[top.0]] = 0;
        }
        let map = node_of
            .iter()
            .map(|&v| (v != usize::MAX).then_some(NodeId(v)))
            .collect();
        Topology::from_parents(m, &parents).map(|t| (t, map))
    }
}

impl Topology {
    /// Convenience: the node of sink `index` (0-based input ordering).
    pub fn sink_node(&self, index: usize) -> NodeId {
        debug_assert!(index < self.num_sinks());
        NodeId(index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_four_sink_tree() {
        let mut b = MergeTreeBuilder::new(4);
        let l = b.merge(b.sink(0), b.sink(1));
        let r = b.merge(b.sink(2), b.sink(3));
        let top = b.merge(l, r);

        let given = b.clone().finish(top, SourceMode::Given).unwrap();
        assert_eq!(given.num_nodes(), 8); // source + 4 sinks + 3 steiner
        assert!(given.is_binary(SourceMode::Given));
        assert!(given.all_sinks_are_leaves());

        let free = b.finish(top, SourceMode::Free).unwrap();
        assert_eq!(free.num_nodes(), 7); // top merge point is the root
        assert!(free.is_binary(SourceMode::Free));
    }

    #[test]
    fn single_sink() {
        let b = MergeTreeBuilder::new(1);
        let t = b.clone().finish(b.sink(0), SourceMode::Given).unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        // Free mode degenerates to Given for a bare sink.
        let b = MergeTreeBuilder::new(1);
        let t = b.clone().finish(b.sink(0), SourceMode::Free).unwrap();
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn skewed_tree() {
        let mut b = MergeTreeBuilder::new(3);
        let c = b.merge(b.sink(2), b.sink(1));
        let top = b.merge(c, b.sink(0));
        let t = b.finish(top, SourceMode::Free).unwrap();
        assert_eq!(t.num_nodes(), 5);
        // Sinks keep their identity: sink 2 is node 3.
        assert_eq!(t.sink_node(2), NodeId(3));
        assert!(t.is_leaf(NodeId(3)));
    }

    #[test]
    fn incomplete_or_reused_clusters_rejected() {
        // Sink 2 never merged.
        let mut b = MergeTreeBuilder::new(3);
        let top = b.merge(b.sink(0), b.sink(1));
        assert!(b.finish(top, SourceMode::Given).is_err());

        // Sink 0 used twice.
        let mut b = MergeTreeBuilder::new(2);
        let top = b.merge(b.sink(0), b.sink(0));
        assert!(b.finish(top, SourceMode::Given).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_panics() {
        let _ = MergeTreeBuilder::new(0);
    }
}
