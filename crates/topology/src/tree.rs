use crate::TopologyError;
use std::fmt;

/// Identifier of a node of a [`Topology`].
///
/// Following the paper's convention, node `0` is the root/source `s0`,
/// nodes `1..=m` are the sinks `s1..sm`, and nodes `m+1..` are Steiner
/// points. Because every non-root node `s_i` owns exactly one edge `e_i`
/// (the edge to its parent), `NodeId` doubles as the *edge identifier*:
/// edge `i` is the edge above node `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The root/source node `s0`.
    pub const ROOT: NodeId = NodeId(0);

    /// Positional index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether the source location participates in the problem.
///
/// The paper distinguishes trees whose source position is *given*
/// (`radius = dist(source, farthest sink)`, root has one child) from trees
/// whose source is *free* (`radius = diameter / 2`, root is itself the top
/// merge point with two children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceMode {
    /// The source location is part of the input; node 0 carries it and has a
    /// single child.
    Given,
    /// The source location is to be chosen by the embedding; node 0 is the
    /// top merge point (two children).
    Free,
}

/// An immutable rooted tree topology over source, sinks and Steiner points.
///
/// Invariants enforced at construction:
///
/// * node 0 is the root and has no parent;
/// * every other node has exactly one parent and the relation is acyclic
///   and connected (a tree);
/// * there is at least one sink.
///
/// *Not* enforced (checked by [`Topology::all_sinks_are_leaves`] because the
/// paper discusses both cases): sinks being leaves. Lemma 3.1 guarantees
/// LUBT feasibility only when they are.
///
/// # Example
///
/// ```
/// use lubt_topology::{NodeId, Topology};
/// // s0 -> s3 -> {s1, s2}: one Steiner point over two sinks.
/// let t = Topology::from_parents(2, &[0, 3, 3, 0])?;
/// assert_eq!(t.num_nodes(), 4);
/// assert_eq!(t.parent(NodeId(1)), Some(NodeId(3)));
/// assert_eq!(t.lca(NodeId(1), NodeId(2)), NodeId(3));
/// # Ok::<(), lubt_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_sinks: usize,
    parent: Vec<usize>, // parent[0] unused
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    /// Binary-lifting ancestor table: `up[k][v]` = 2^k-th ancestor of `v`.
    up: Vec<Vec<usize>>,
    postorder: Vec<usize>,
}

impl Topology {
    /// Builds a topology from a parent array.
    ///
    /// `parents[i]` is the parent of node `i` for `i >= 1`; `parents[0]` is
    /// ignored. `num_sinks` declares nodes `1..=num_sinks` as sinks.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] when the parent relation is not a rooted
    /// tree, references out-of-range nodes, or the sink count is invalid.
    pub fn from_parents(num_sinks: usize, parents: &[usize]) -> Result<Self, TopologyError> {
        let n = parents.len();
        if num_sinks == 0 {
            return Err(TopologyError::NoSinks);
        }
        if num_sinks >= n {
            return Err(TopologyError::TooManySinks {
                sinks: num_sinks,
                nodes: n,
            });
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parents.iter().enumerate().skip(1) {
            if p >= n {
                return Err(TopologyError::ParentOutOfRange {
                    node: i,
                    parent: p,
                    nodes: n,
                });
            }
            if p == i {
                return Err(TopologyError::NotATree);
            }
            children[p].push(i);
        }

        // BFS from the root: all nodes must be reached exactly once.
        let mut depth = vec![usize::MAX; n];
        depth[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut seen = 1usize;
        let mut postorder = Vec::with_capacity(n);
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &children[v] {
                if depth[c] != usize::MAX {
                    return Err(TopologyError::NotATree);
                }
                depth[c] = depth[v] + 1;
                seen += 1;
                queue.push_back(c);
            }
        }
        if seen != n {
            return Err(TopologyError::NotATree);
        }
        // Postorder = reverse BFS order works for "children before parent"
        // only if BFS layers are monotone, which they are: any node appears
        // after its parent in `order`, so the reverse visits children first.
        postorder.extend(order.iter().rev().copied());

        // Binary lifting table.
        let levels = (usize::BITS - n.leading_zeros()) as usize;
        let mut up = vec![vec![0usize; n]; levels.max(1)];
        up[0][1..n].copy_from_slice(&parents[1..n]);
        up[0][0] = 0;
        for k in 1..up.len() {
            for v in 0..n {
                up[k][v] = up[k - 1][up[k - 1][v]];
            }
        }

        let mut parent = parents.to_vec();
        parent[0] = usize::MAX;
        Ok(Topology {
            num_sinks,
            parent,
            children,
            depth,
            up,
            postorder,
        })
    }

    /// Total node count (source + sinks + Steiner points).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of sinks `m`.
    #[inline]
    pub fn num_sinks(&self) -> usize {
        self.num_sinks
    }

    /// Number of Steiner points.
    #[inline]
    pub fn num_steiner(&self) -> usize {
        self.num_nodes() - self.num_sinks - 1
    }

    /// Number of edges (`num_nodes - 1`); edge `i` sits above node `i`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_nodes() - 1
    }

    /// The root node `s0`.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// `true` for nodes `1..=m`.
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        (1..=self.num_sinks).contains(&v.0)
    }

    /// `true` for Steiner nodes (`m+1..`).
    #[inline]
    pub fn is_steiner(&self, v: NodeId) -> bool {
        v.0 > self.num_sinks
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        (v.0 != 0).then(|| NodeId(self.parent[v.0]))
    }

    /// Children of `v`, in insertion order.
    #[inline]
    pub fn children(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children[v.0].iter().map(|&c| NodeId(c))
    }

    /// Number of children of `v`.
    #[inline]
    pub fn num_children(&self, v: NodeId) -> usize {
        self.children[v.0].len()
    }

    /// `true` when `v` has no children.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.0].is_empty()
    }

    /// Depth of `v` (root has depth 0).
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v.0]
    }

    /// All sink nodes `1..=m`.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..=self.num_sinks).map(NodeId)
    }

    /// All nodes in an order where every child precedes its parent.
    pub fn postorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.postorder.iter().map(|&v| NodeId(v))
    }

    /// All nodes in an order where every parent precedes its children.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.postorder.iter().rev().map(|&v| NodeId(v))
    }

    /// All edges as `(child, parent)` pairs; the edge's identifier is the
    /// child's `NodeId`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (1..self.num_nodes()).map(|i| (NodeId(i), NodeId(self.parent[i])))
    }

    /// Lowest common ancestor of `a` and `b` in O(log n).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a.0, b.0);
        if self.depth[a] < self.depth[b] {
            std::mem::swap(&mut a, &mut b);
        }
        let mut diff = self.depth[a] - self.depth[b];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                a = self.up[k][a];
            }
            diff >>= 1;
            k += 1;
        }
        if a == b {
            return NodeId(a);
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][a] != self.up[k][b] {
                a = self.up[k][a];
                b = self.up[k][b];
            }
        }
        NodeId(self.parent[a])
    }

    /// Edges on the path from `v` up to (excluding) `ancestor`, identified
    /// by their child nodes.
    ///
    /// # Panics
    ///
    /// Panics if `ancestor` is not actually an ancestor of `v`.
    pub fn path_to_ancestor(&self, v: NodeId, ancestor: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = v.0;
        while cur != ancestor.0 {
            assert_ne!(cur, 0, "{ancestor} is not an ancestor of {v}");
            out.push(NodeId(cur));
            cur = self.parent[cur];
        }
        out
    }

    /// Edges on the unique tree path between `a` and `b`.
    pub fn path_between(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let l = self.lca(a, b);
        let mut p = self.path_to_ancestor(a, l);
        p.extend(self.path_to_ancestor(b, l));
        p
    }

    /// `true` when every sink is a leaf — the precondition of Lemma 3.1
    /// (guaranteed LUBT feasibility for any bounds).
    pub fn all_sinks_are_leaves(&self) -> bool {
        self.sinks().all(|s| self.is_leaf(s))
    }

    /// `true` when the topology is in the §3 normal form: every Steiner
    /// point has exactly two children, and the root has one child
    /// ([`SourceMode::Given`]) or two ([`SourceMode::Free`]).
    pub fn is_binary(&self, mode: SourceMode) -> bool {
        let root_ok = match mode {
            SourceMode::Given => self.num_children(self.root()) == 1,
            SourceMode::Free => self.num_children(self.root()) == 2,
        };
        root_ok && (self.num_sinks + 1..self.num_nodes()).all(|v| self.children[v].len() == 2)
    }

    /// Sinks contained in the subtree rooted at `v`, in ascending order.
    pub fn sinks_under(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v.0];
        while let Some(x) = stack.pop() {
            if (1..=self.num_sinks).contains(&x) {
                out.push(NodeId(x));
            }
            stack.extend(self.children[x].iter().copied());
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s0 -> s7(st) -> [s5(st) -> [s1, s2], s6(st) -> [s3, s4]]
    fn sample() -> Topology {
        Topology::from_parents(4, &[0, 5, 5, 6, 6, 7, 7, 0]).unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let t = sample();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_sinks(), 4);
        assert_eq!(t.num_steiner(), 3);
        assert_eq!(t.num_edges(), 7);
        assert!(t.is_sink(NodeId(3)));
        assert!(t.is_steiner(NodeId(6)));
        assert!(!t.is_sink(NodeId(0)));
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(7)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.num_children(NodeId(7)), 2);
        assert!(t.all_sinks_are_leaves());
        assert!(t.is_binary(SourceMode::Given));
        assert!(!t.is_binary(SourceMode::Free));
    }

    #[test]
    fn depth_and_lca() {
        let t = sample();
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(7)), 1);
        assert_eq!(t.depth(NodeId(1)), 3);
        assert_eq!(t.lca(NodeId(1), NodeId(2)), NodeId(5));
        assert_eq!(t.lca(NodeId(1), NodeId(3)), NodeId(7));
        assert_eq!(t.lca(NodeId(1), NodeId(7)), NodeId(7));
        assert_eq!(t.lca(NodeId(4), NodeId(4)), NodeId(4));
        assert_eq!(t.lca(NodeId(0), NodeId(3)), NodeId(0));
    }

    #[test]
    fn paths() {
        let t = sample();
        assert_eq!(
            t.path_to_ancestor(NodeId(1), NodeId(0)),
            vec![NodeId(1), NodeId(5), NodeId(7)]
        );
        let p = t.path_between(NodeId(1), NodeId(4));
        // Edges: e1, e5 up to lca 7; e4, e6 on the other side.
        assert_eq!(p.len(), 4);
        assert!(p.contains(&NodeId(1)) && p.contains(&NodeId(5)));
        assert!(p.contains(&NodeId(4)) && p.contains(&NodeId(6)));
        assert!(t.path_between(NodeId(2), NodeId(2)).is_empty());
    }

    #[test]
    fn traversal_orders() {
        let t = sample();
        let post: Vec<usize> = t.postorder().map(NodeId::index).collect();
        let pos = |v: usize| post.iter().position(|&x| x == v).unwrap();
        for (c, p) in t.edges() {
            assert!(pos(c.0) < pos(p.0), "child {c} after parent {p}");
        }
        let pre: Vec<usize> = t.preorder().map(NodeId::index).collect();
        assert_eq!(pre[0], 0);
    }

    #[test]
    fn sinks_under_subtrees() {
        let t = sample();
        assert_eq!(t.sinks_under(NodeId(5)), vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.sinks_under(NodeId(7)).len(), 4);
        assert_eq!(t.sinks_under(NodeId(3)), vec![NodeId(3)]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert_eq!(
            Topology::from_parents(0, &[0, 0]).unwrap_err(),
            TopologyError::NoSinks
        );
        assert!(matches!(
            Topology::from_parents(3, &[0, 0, 0]).unwrap_err(),
            TopologyError::TooManySinks { .. }
        ));
        assert!(matches!(
            Topology::from_parents(1, &[0, 9]).unwrap_err(),
            TopologyError::ParentOutOfRange { .. }
        ));
        // Cycle: 1 -> 2 -> 1 disconnected from root.
        assert_eq!(
            Topology::from_parents(1, &[0, 2, 1]).unwrap_err(),
            TopologyError::NotATree
        );
        // Self-loop.
        assert_eq!(
            Topology::from_parents(1, &[0, 1]).unwrap_err(),
            TopologyError::NotATree
        );
    }

    #[test]
    fn non_leaf_sink_detected() {
        // s2 is the parent of s1: a sink with a child (Figure 1(a) shape).
        let t = Topology::from_parents(2, &[0, 2, 0]).unwrap();
        assert!(!t.all_sinks_are_leaves());
    }

    #[test]
    fn deep_chain_lca() {
        // Chain of 64 nodes to exercise multi-level lifting.
        let n = 64;
        let parents: Vec<usize> = (0..n).map(|i: usize| i.saturating_sub(1)).collect();
        let t = Topology::from_parents(1, &parents).unwrap();
        assert_eq!(t.lca(NodeId(63), NodeId(40)), NodeId(40));
        assert_eq!(t.depth(NodeId(63)), 63);
        assert_eq!(t.path_to_ancestor(NodeId(63), NodeId(60)).len(), 3);
    }
}
