use crate::builder::ClusterId;
use crate::{MergeTreeBuilder, SourceMode, Topology};
use lubt_geom::Point;

/// Balanced recursive-bisection topology generation
/// (Jackson-Srinivasan-Kuh DAC'90 "means and medians" family).
///
/// The sink set is split at the median of its wider spread dimension
/// (x or y), each half is partitioned recursively, and the two halves merge
/// under a Steiner point. The result is a balanced full binary tree whose
/// subtrees are geometrically contiguous — the classic H-tree-like global
/// structure.
///
/// # Panics
///
/// Panics when `sinks` is empty.
///
/// # Example
///
/// ```
/// use lubt_geom::Point;
/// use lubt_topology::{bipartition_topology, SourceMode};
/// let sinks: Vec<Point> = (0..4).map(|i| Point::new(f64::from(i), 0.0)).collect();
/// let t = bipartition_topology(&sinks, SourceMode::Free);
/// // Left pair {0,1} and right pair {2,3} form the two halves.
/// assert_eq!(t.parent(t.sink_node(0)), t.parent(t.sink_node(1)));
/// assert_eq!(t.parent(t.sink_node(2)), t.parent(t.sink_node(3)));
/// ```
pub fn bipartition_topology(sinks: &[Point], mode: SourceMode) -> Topology {
    assert!(!sinks.is_empty(), "need at least one sink");
    let m = sinks.len();
    let mut b = MergeTreeBuilder::new(m);
    let mut indices: Vec<usize> = (0..m).collect();
    let top = partition(&mut b, sinks, &mut indices);
    b.finish(top, mode)
        .expect("bisection covers every sink once")
}

fn partition(b: &mut MergeTreeBuilder, sinks: &[Point], idx: &mut [usize]) -> ClusterId {
    if idx.len() == 1 {
        return b.sink(idx[0]);
    }
    // Split along the dimension with the larger spread.
    let (min_x, max_x) = idx
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &i| {
            (lo.min(sinks[i].x), hi.max(sinks[i].x))
        });
    let (min_y, max_y) = idx
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &i| {
            (lo.min(sinks[i].y), hi.max(sinks[i].y))
        });
    if max_x - min_x >= max_y - min_y {
        idx.sort_by(|&a, &b| {
            (sinks[a].x, sinks[a].y)
                .partial_cmp(&(sinks[b].x, sinks[b].y))
                .expect("finite coordinates")
        });
    } else {
        idx.sort_by(|&a, &b| {
            (sinks[a].y, sinks[a].x)
                .partial_cmp(&(sinks[b].y, sinks[b].x))
                .expect("finite coordinates")
        });
    }
    let mid = idx.len() / 2;
    let (left, right) = idx.split_at_mut(mid);
    let l = partition(b, sinks, left);
    let r = partition(b, sinks, right);
    b.merge(l, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_contiguously_partitioned() {
        let sinks: Vec<Point> = (0..16)
            .map(|i| Point::new(f64::from(i % 4) * 10.0, f64::from(i / 4) * 10.0))
            .collect();
        let t = bipartition_topology(&sinks, SourceMode::Given);
        assert!(t.is_binary(SourceMode::Given));
        assert!(t.all_sinks_are_leaves());
        for s in t.sinks() {
            assert_eq!(t.depth(s), 5); // source -> 4 levels of bisection
        }
    }

    #[test]
    fn odd_sizes_and_duplicates() {
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(2.0, 8.0),
        ];
        let t = bipartition_topology(&sinks, SourceMode::Free);
        assert_eq!(t.num_sinks(), 5);
        assert!(t.is_binary(SourceMode::Free));
    }

    #[test]
    fn single_sink() {
        let t = bipartition_topology(&[Point::new(1.0, 2.0)], SourceMode::Given);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn splits_wider_dimension_first() {
        // Much wider in y: the first split separates bottom from top.
        let sinks = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 100.0),
            Point::new(1.0, 100.0),
        ];
        let t = bipartition_topology(&sinks, SourceMode::Free);
        assert_eq!(t.parent(t.sink_node(0)), t.parent(t.sink_node(1)));
        assert_eq!(t.parent(t.sink_node(2)), t.parent(t.sink_node(3)));
    }
}
