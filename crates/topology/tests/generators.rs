//! Property tests over the topology generators: any sink set must yield a
//! valid, binary, sink-leaf topology, deterministically.

use lubt_geom::Point;
use lubt_topology::{
    bipartition_topology, matching_topology, nearest_neighbor_topology, SourceMode, Topology,
};
use proptest::prelude::*;

fn sink_set() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (-500.0..500.0f64, -500.0..500.0f64).prop_map(|(x, y)| Point::new(x, y)),
        1..40,
    )
}

fn check_valid(topo: &Topology, m: usize, mode: SourceMode) {
    assert_eq!(topo.num_sinks(), m);
    assert!(topo.all_sinks_are_leaves());
    if m >= 2 {
        assert!(topo.is_binary(mode));
        let expected_nodes = match mode {
            SourceMode::Given => 2 * m,    // root + m sinks + (m-1) merges
            SourceMode::Free => 2 * m - 1, // top merge is the root
        };
        assert_eq!(topo.num_nodes(), expected_nodes);
    }
    // Every sink is reachable from the root.
    assert_eq!(topo.sinks_under(topo.root()).len(), m);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nearest_neighbor_always_valid(sinks in sink_set()) {
        for mode in [SourceMode::Given, SourceMode::Free] {
            let t = nearest_neighbor_topology(&sinks, mode);
            check_valid(&t, sinks.len(), mode);
        }
    }

    #[test]
    fn matching_always_valid(sinks in sink_set()) {
        for mode in [SourceMode::Given, SourceMode::Free] {
            let t = matching_topology(&sinks, mode);
            check_valid(&t, sinks.len(), mode);
        }
    }

    #[test]
    fn bipartition_always_valid(sinks in sink_set()) {
        for mode in [SourceMode::Given, SourceMode::Free] {
            let t = bipartition_topology(&sinks, mode);
            check_valid(&t, sinks.len(), mode);
        }
    }

    /// Generators are pure functions of their input.
    #[test]
    fn generators_are_deterministic(sinks in sink_set()) {
        let a = nearest_neighbor_topology(&sinks, SourceMode::Free);
        let b = nearest_neighbor_topology(&sinks, SourceMode::Free);
        prop_assert_eq!(a, b);
        let a = matching_topology(&sinks, SourceMode::Given);
        let b = matching_topology(&sinks, SourceMode::Given);
        prop_assert_eq!(a, b);
    }

    /// Matching trees are balanced: depth within one of ceil(log2 m) below
    /// the merge root.
    #[test]
    fn matching_depth_is_logarithmic(sinks in proptest::collection::vec(
        (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)), 2..33)) {
        let t = matching_topology(&sinks, SourceMode::Free);
        let m = sinks.len();
        let max_depth = t.sinks().map(|s| t.depth(s)).max().unwrap();
        let log2 = (usize::BITS - (m - 1).leading_zeros()) as usize;
        prop_assert!(max_depth <= log2 + 1, "m={m}: depth {max_depth} > log {log2} + 1");
    }

    /// LCA is consistent with paths: lca lies on the path between any two
    /// sinks and the path decomposes through it.
    #[test]
    fn lca_path_consistency(sinks in proptest::collection::vec(
        (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)), 2..20)) {
        let t = nearest_neighbor_topology(&sinks, SourceMode::Given);
        let snodes: Vec<_> = t.sinks().collect();
        for (k, &a) in snodes.iter().enumerate() {
            let b = snodes[(k + 1) % snodes.len()];
            if a == b { continue; }
            let l = t.lca(a, b);
            let pa = t.path_to_ancestor(a, l);
            let pb = t.path_to_ancestor(b, l);
            let joint = t.path_between(a, b);
            prop_assert_eq!(pa.len() + pb.len(), joint.len());
        }
    }
}
