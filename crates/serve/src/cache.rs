//! A small deterministic LRU used for both cache levels.
//!
//! Level 1 (result cache) stores exact response payload bytes; level 2
//! (session pool) stores [`lubt_core::WarmLubtSession`]s that are
//! *checked out* ([`LruCache::take`]) for the duration of a replay so no
//! lock is held across a solve. Recency is an explicit monotone tick,
//! and eviction removes the minimum tick — the behavior is a pure
//! function of the operation sequence, independent of hash iteration
//! order, so cache hit/miss patterns are reproducible run to run.

use std::collections::HashMap;

/// A least-recently-used map with a fixed capacity.
///
/// Capacity `0` disables the cache entirely: every lookup misses and
/// every insert is dropped, which is how `--cache-entries 0` forces the
/// warm-session path in the byte-identity CI check.
#[derive(Debug)]
pub struct LruCache<V> {
    cap: usize,
    tick: u64,
    map: HashMap<String, (u64, V)>,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let tick = self.bump();
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.0 = tick;
                Some(&slot.1)
            }
            None => None,
        }
    }

    /// Removes and returns `key` (session checkout).
    pub fn take(&mut self, key: &str) -> Option<V> {
        self.map.remove(key).map(|(_, v)| v)
    }

    /// Inserts `key`, evicting the least recently used entry at
    /// capacity. Re-inserting an existing key replaces the value and
    /// refreshes recency.
    pub fn insert(&mut self, key: &str, value: V) {
        if self.cap == 0 {
            return;
        }
        let tick = self.bump();
        if !self.map.contains_key(key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key.to_string(), (tick, value));
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get("a"), Some(&1)); // refresh a; b is now oldest
        c.insert("c", 3);
        assert_eq!(c.get("b"), None, "b was evicted");
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.get("c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(&10));
        assert_eq!(c.get("b"), Some(&2));
    }

    #[test]
    fn take_checks_out_the_entry() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        assert_eq!(c.take("a"), Some(1));
        assert_eq!(c.take("a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get("a"), None);
        assert!(c.is_empty());
    }
}
