//! The bounded admission queue.
//!
//! Connections push, workers pop. The queue is the daemon's only elastic
//! buffer, so it is *bounded*: once `depth` requests are waiting, new
//! admissions fail fast with [`PushError::Full`] (the wire `queue-full`
//! error) instead of letting a flood grow resident memory and tail
//! latency without limit.
//!
//! Ordering is strict priority, FIFO within a priority level — the heap
//! key is `(priority, admission sequence)`, so two requests at the same
//! priority pop in arrival order regardless of heap internals. Each
//! entry also carries an optional deadline stamped at admission; expiry
//! is *checked* at both ends (admission and dequeue) but *enforced* by
//! the worker, which still owes the client a `deadline-expired` response.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue already holds `depth` waiting requests.
    Full,
    /// The queue was closed by shutdown; no new work is admitted.
    Closed,
}

/// A queued request with its scheduling metadata.
#[derive(Debug)]
pub struct Admitted<T> {
    /// Priority it was admitted with (higher pops sooner).
    pub priority: u8,
    /// Deadline stamped at admission, if any.
    pub deadline: Option<Instant>,
    /// The request itself.
    pub item: T,
    seq: u64,
}

impl<T> PartialEq for Admitted<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Admitted<T> {}
impl<T> PartialOrd for Admitted<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Admitted<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then *lower* sequence (FIFO).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Admitted<T>>,
    next_seq: u64,
    open: bool,
}

/// A bounded, priority-ordered, closeable MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    depth: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `depth` waiting entries.
    pub fn new(depth: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                open: true,
            }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Admits `item`, failing fast when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn push(&self, priority: u8, deadline: Option<Instant>, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue poisoned");
        if !s.open {
            return Err(PushError::Closed);
        }
        if s.heap.len() >= self.depth {
            return Err(PushError::Full);
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Admitted {
            priority,
            deadline,
            item,
            seq,
        });
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next entry. Returns `None` only when the queue is
    /// closed **and** drained — every admitted entry is handed to some
    /// worker before the `None`s start, which is what makes shutdown
    /// graceful.
    pub fn pop(&self) -> Option<Admitted<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = s.heap.pop() {
                return Some(entry);
            }
            if !s.open {
                return None;
            }
            s = self.available.wait(s).expect("queue poisoned");
        }
    }

    /// Stops admissions and wakes every waiting worker. Entries already
    /// admitted remain poppable.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").open = false;
        self.available.notify_all();
    }

    /// Waiting entries right now (racy by nature; for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").heap.len()
    }

    /// True when no entries are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn priority_then_fifo_order() {
        let q = BoundedQueue::new(16);
        q.push(1, None, "low-a").unwrap();
        q.push(5, None, "mid-a").unwrap();
        q.push(5, None, "mid-b").unwrap();
        q.push(9, None, "high").unwrap();
        q.push(1, None, "low-b").unwrap();
        let order: Vec<_> = (0..5).map(|_| q.pop().unwrap().item).collect();
        assert_eq!(order, ["high", "mid-a", "mid-b", "low-a", "low-b"]);
    }

    #[test]
    fn full_and_closed_are_distinct_fast_failures() {
        let q = BoundedQueue::new(2);
        q.push(5, None, 1).unwrap();
        q.push(5, None, 2).unwrap();
        assert_eq!(q.push(5, None, 3), Err(PushError::Full));
        // A pop frees a slot immediately.
        assert_eq!(q.pop().unwrap().item, 1);
        q.push(5, None, 3).unwrap();
        q.close();
        assert_eq!(q.push(5, None, 4), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_admitted_entries_before_none() {
        let q = BoundedQueue::new(8);
        for k in 0..5 {
            q.push(5, None, k).unwrap();
        }
        q.close();
        let mut drained: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.item)).collect();
        drained.sort_unstable();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
        assert!(q.pop().is_none(), "closed and drained stays None");
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.push(5, None, 7).unwrap();
        q.close();
        let got: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
    }

    #[test]
    fn deadlines_ride_along() {
        let q = BoundedQueue::new(4);
        let d = Instant::now();
        q.push(5, Some(d), ()).unwrap();
        assert_eq!(q.pop().unwrap().deadline, Some(d));
    }
}
