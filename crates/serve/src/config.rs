//! Daemon configuration.

/// Default cap on a single request frame, in bytes. Generous enough for
/// a multi-thousand-sink batch, small enough that a hostile client
/// cannot balloon resident memory with one line.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 4 << 20;

/// Configuration for [`crate::Server::start`].
///
/// The defaults bind an ephemeral localhost port with one worker per
/// core — what the in-process tests and benches want. The CLI overrides
/// `addr` with a routable default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `host:port` (port `0` = ephemeral).
    pub addr: String,
    /// Solver worker threads (`0` = one per available core).
    pub workers: usize,
    /// Admission queue capacity; requests beyond it are rejected with
    /// `queue-full` instead of buffering unboundedly.
    pub queue_depth: usize,
    /// Result cache capacity in entries (`0` disables the cache).
    pub cache_entries: usize,
    /// Warm LP session pool capacity in entries (`0` disables the pool).
    pub session_entries: usize,
    /// Maximum request frame length in bytes; longer frames are rejected
    /// with `oversized` and the connection is closed (the rest of the
    /// stream can no longer be framed).
    pub max_request_bytes: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`, in milliseconds from admission (`None` = no
    /// default deadline).
    pub default_deadline_ms: Option<u64>,
    /// Honor the wire `shutdown` op. Off by default: a remote peer
    /// should not be able to stop the daemon unless explicitly allowed.
    pub allow_shutdown: bool,
    /// Cap on retained `warning[...]`/`info[...]` trace events per
    /// request recorder; overflow surfaces as
    /// `warning[trace-events-dropped]` in `/metrics`.
    pub trace_event_cap: usize,
    /// Structured JSON-lines access log path (`None` disables logging).
    /// One line per queued request: id, op, backend, queue depth at
    /// admission, cache outcome, queue-wait and solve nanos, status,
    /// response bytes.
    pub access_log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_entries: 128,
            session_entries: 16,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            default_deadline_ms: None,
            allow_shutdown: false,
            trace_event_cap: lubt_obs::DEFAULT_EVENT_CAP,
            access_log: None,
        }
    }
}

impl ServeConfig {
    /// The effective worker count (`0` resolved to the core count).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let c = ServeConfig::default();
        assert!(!c.allow_shutdown, "remote shutdown must be opt-in");
        assert!(c.queue_depth > 0);
        assert!(c.max_request_bytes >= 1 << 20);
        assert!(c.effective_workers() >= 1);
        assert_eq!(
            ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            }
            .effective_workers(),
            3
        );
    }
}
