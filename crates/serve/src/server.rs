//! The daemon itself: acceptor, connection framing, worker pool, and
//! the live `/metrics` endpoint.
//!
//! One thread accepts, one lightweight thread per connection frames and
//! parses, and a fixed pool of solver workers drains the bounded
//! admission queue. The split keeps slow readers from occupying solver
//! capacity: a connection only touches the queue once its frame parsed
//! and validated.

use crate::cache::LruCache;
use crate::config::ServeConfig;
use crate::protocol::{self, codes, Op, Request};
use crate::queue::{Admitted, BoundedQueue, PushError};
use lubt_core::{
    solution_to_json, BatchSolver, DelayBounds, EbfSolver, LubtBuilder, LubtError, SolverBackend,
    WarmLubtSession,
};
use lubt_data::Instance;
use lubt_obs::fsio::LineLog;
use lubt_obs::json::{json_escape, parse_limited};
use lubt_obs::{AggregateTrace, PhaseTimer, Recorder, SpanGuard, SpanTree, TraceRecorder};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
    /// Time the connection thread spent framing + parsing this request.
    parse_ns: u64,
    /// When the request entered the admission queue.
    admitted: Instant,
    /// Queue depth observed at admission (before this request's push).
    queue_depth: usize,
}

struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache<String>>,
    sessions: Mutex<LruCache<WarmLubtSession>>,
    metrics: Mutex<AggregateTrace>,
    /// Server-wide span tree: every request's profiling spans merged by
    /// name. Shape is deterministic for a given request multiset
    /// (DESIGN.md §16); durations are wall-clock and exempt.
    spans: Mutex<SpanTree>,
    /// JSON-lines access log, line-buffered appends (`None` = disabled).
    access_log: Option<LineLog>,
    started: Instant,
    stopping: AtomicBool,
    stopped: Mutex<bool>,
    stop_cv: Condvar,
    /// Requests admitted but not yet written back; drained before
    /// `wait` returns so a process exit cannot cut a response short.
    inflight: AtomicUsize,
    /// Workers currently executing a request. Idle workers' cores are
    /// donated to the active solve's assisted intra-solve loops
    /// (DESIGN.md §17) — donation never changes response bytes, only
    /// wall-clock.
    busy: AtomicUsize,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.queue.close();
        *self.stopped.lock().expect("stop flag poisoned") = true;
        self.stop_cv.notify_all();
    }

    /// Folds service-layer bookkeeping counters (connection errors,
    /// scrapes) into the aggregate without counting a solve.
    fn record_bookkeeping(&self, fill: impl FnOnce(&TraceRecorder)) {
        let rec = TraceRecorder::new();
        fill(&rec);
        let mut agg = AggregateTrace::new();
        agg.fold(&rec.snapshot());
        agg.solves = 0;
        self.merge_metrics(&agg);
    }

    fn merge_metrics(&self, agg: &AggregateTrace) {
        self.metrics.lock().expect("metrics poisoned").merge(agg);
    }
}

/// A running daemon. Start with [`Server::start`]; stop with
/// [`Server::shutdown`] (drains every admitted request) or hand the
/// thread over with [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns.
    ///
    /// # Errors
    ///
    /// Any socket-level failure binding `config.addr`.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Non-blocking accept so the acceptor can observe shutdown
        // without a wake-up connection.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let worker_count = config.effective_workers();
        let access_log = match &config.access_log {
            Some(path) => Some(LineLog::append_to(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            cache: Mutex::new(LruCache::new(config.cache_entries)),
            sessions: Mutex::new(LruCache::new(config.session_entries)),
            metrics: Mutex::new(AggregateTrace::new()),
            spans: Mutex::new(SpanTree::new()),
            access_log,
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            stopped: Mutex::new(false),
            stop_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            config,
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current Prometheus exposition, exactly what `/metrics`
    /// serves.
    pub fn metrics_prometheus(&self) -> String {
        self.shared
            .metrics
            .lock()
            .expect("metrics poisoned")
            .to_prometheus()
    }

    /// The server-wide profiling span tree: every answered request's
    /// spans merged by name. Durations vary run to run; the *shape*
    /// (paths, hit counts, child order) is a pure function of the
    /// request multiset, independent of worker count (DESIGN.md §16).
    pub fn span_tree(&self) -> SpanTree {
        self.shared.spans.lock().expect("spans poisoned").clone()
    }

    /// `"path hits"` DFS lines of [`Server::span_tree`] — the byte
    /// payload the worker-count determinism check compares.
    pub fn span_shape(&self) -> String {
        self.shared
            .spans
            .lock()
            .expect("spans poisoned")
            .shape_text()
    }

    /// Triggers graceful shutdown without blocking (what the wire
    /// `shutdown` op calls). Pair with [`Server::wait`] or
    /// [`Server::shutdown`] to join.
    pub fn signal_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Graceful shutdown: stops accepting, drains every admitted
    /// request, joins the workers.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Blocks until some peer (or [`Server::signal_shutdown`]) begins
    /// shutdown, then drains and joins. This is the `lubt serve` main
    /// loop.
    pub fn wait(mut self) {
        let mut stopped = self.shared.stopped.lock().expect("stop flag poisoned");
        while !*stopped {
            stopped = self
                .shared
                .stop_cv
                .wait(stopped)
                .expect("stop flag poisoned");
        }
        drop(stopped);
        self.join_all();
    }

    fn join_all(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers have answered every admitted request; give the
        // connection threads a bounded window to flush those responses
        // onto their sockets before we return (and the process
        // possibly exits).
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                });
            }
            Err(_) => {
                // WouldBlock (idle) and transient accept errors both
                // just poll again; the flag bounds the loop.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

enum Frame {
    Eof,
    Oversized,
    Line(Vec<u8>),
}

/// Reads one newline-terminated frame, enforcing the byte cap *during*
/// the read — an oversized frame is detected after `cap + 1` bytes, not
/// after buffering the whole flood.
fn read_frame(reader: &mut BufReader<TcpStream>, cap: usize) -> std::io::Result<Frame> {
    let mut buf = Vec::new();
    let n = (&mut *reader)
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > cap {
        return Ok(Frame::Oversized);
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    Ok(Frame::Line(buf))
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // Accepted sockets inherit the listener's non-blocking flag on some
    // platforms; connection threads want plain blocking reads.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    if reader.fill_buf()?.starts_with(b"GET ") {
        return serve_metrics(&mut reader, &mut writer, shared);
    }
    loop {
        match read_frame(&mut reader, shared.config.max_request_bytes)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized => {
                shared.record_bookkeeping(|rec| rec.incr("serve.oversized", 1));
                let msg = format!(
                    "request exceeds the {}-byte frame cap; closing (stream can no longer be framed)",
                    shared.config.max_request_bytes
                );
                writeln!(
                    writer,
                    "{}",
                    protocol::error_response("", codes::OVERSIZED, &msg)
                )?;
                return Ok(());
            }
            Frame::Line(bytes) => {
                if bytes.is_empty() {
                    continue; // blank keep-alive lines are fine
                }
                let response = handle_line(&bytes, shared);
                writeln!(writer, "{response}")?;
                writer.flush()?;
            }
        }
    }
}

/// Parses, validates and dispatches one frame, returning the response
/// line (without its trailing newline).
fn handle_line(bytes: &[u8], shared: &Arc<Shared>) -> String {
    let parse_start = Instant::now();
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(e) => {
            shared.record_bookkeeping(|rec| rec.incr("serve.bad_requests", 1));
            return protocol::error_response(
                "",
                codes::BAD_REQUEST,
                &format!("request is not valid UTF-8: {e}"),
            );
        }
    };
    let doc = match parse_limited(text, shared.config.max_request_bytes) {
        Ok(doc) => doc,
        Err(e) => {
            shared.record_bookkeeping(|rec| rec.incr("serve.bad_requests", 1));
            return protocol::error_response(
                "",
                codes::BAD_REQUEST,
                &format!("invalid JSON at byte {}: {}", e.offset, e.message),
            );
        }
    };
    // Best-effort id echo for validation failures.
    let echo_id = doc
        .get("id")
        .and_then(|v| v.as_str())
        .unwrap_or("")
        .to_string();
    let request = match protocol::parse_request(&doc) {
        Ok(r) => r,
        Err(e) => {
            shared.record_bookkeeping(|rec| rec.incr("serve.bad_requests", 1));
            return protocol::error_response(&echo_id, e.code, &e.message);
        }
    };
    match request.op {
        Op::Ping => {
            shared.record_bookkeeping(|rec| rec.incr("serve.pings", 1));
            protocol::ok_ping(&request.id)
        }
        Op::Shutdown => {
            if !shared.config.allow_shutdown {
                shared.record_bookkeeping(|rec| rec.incr("serve.forbidden", 1));
                protocol::error_response(
                    &request.id,
                    codes::FORBIDDEN,
                    "shutdown over the wire is disabled; start with --allow-shutdown to permit it",
                )
            } else {
                shared.record_bookkeeping(|rec| rec.incr("serve.shutdowns", 1));
                let ack = protocol::ok_shutdown(&request.id);
                shared.begin_shutdown();
                ack
            }
        }
        Op::Solve | Op::Audit | Op::Lint | Op::Batch => {
            let parse_ns = saturating_ns(parse_start.elapsed().as_nanos());
            enqueue_and_wait(request, parse_ns, shared)
        }
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

fn enqueue_and_wait(request: Request, parse_ns: u64, shared: &Arc<Shared>) -> String {
    let id = request.id.clone();
    let deadline = request
        .deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let priority = request.priority;
    let (reply_tx, reply_rx) = mpsc::channel();
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    let queue_depth = shared.queue.len();
    let pushed = shared.queue.push(
        priority,
        deadline,
        Job {
            request,
            reply: reply_tx,
            parse_ns,
            admitted: Instant::now(),
            queue_depth,
        },
    );
    let response = match pushed {
        Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
            protocol::error_response(
                &id,
                codes::SOLVER_ERROR,
                "worker terminated before answering",
            )
        }),
        Err(PushError::Full) => {
            shared.record_bookkeeping(|rec| rec.incr("serve.queue_full", 1));
            protocol::error_response(
                &id,
                codes::QUEUE_FULL,
                &format!(
                    "admission queue is at its {}-request capacity; retry later",
                    shared.config.queue_depth
                ),
            )
        }
        Err(PushError::Closed) => protocol::error_response(
            &id,
            codes::SHUTTING_DOWN,
            "daemon is draining; no new work is admitted",
        ),
    };
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    response
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(entry) = shared.queue.pop() {
        let Admitted {
            deadline,
            item: job,
            ..
        } = entry;
        let rec = Arc::new(TraceRecorder::with_event_cap(shared.config.trace_event_cap));
        let mut extra = AggregateTrace::new();
        let mut cold_solves = 0u64;
        let mut cache_outcome = "none";
        let queue_wait_ns = saturating_ns(job.admitted.elapsed().as_nanos());
        let solve_start = Instant::now();
        shared.busy.fetch_add(1, Ordering::Relaxed);
        let response = {
            let _timer = PhaseTimer::new(&*rec, "time.serve.request");
            // The request span roots this request's profile; the solve's
            // own spans ("solve", "embed") nest under it because the
            // pipeline runs on this thread with this recorder.
            let _request_span = SpanGuard::enter(&*rec, "request");
            rec.span_record("parse", 1, job.parse_ns);
            rec.span_record("queue_wait", 1, queue_wait_ns);
            rec.incr("serve.requests", 1);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                rec.incr("serve.deadline_expired", 1);
                protocol::error_response(
                    &job.request.id,
                    codes::DEADLINE_EXPIRED,
                    "deadline passed before a worker picked the request up",
                )
            } else {
                execute(
                    &job.request,
                    shared,
                    &rec,
                    &mut extra,
                    &mut cold_solves,
                    &mut cache_outcome,
                )
            }
        };
        shared.busy.fetch_sub(1, Ordering::Relaxed);
        let solve_ns = saturating_ns(solve_start.elapsed().as_nanos());
        let snapshot = rec.snapshot();
        let mut agg = AggregateTrace::new();
        agg.fold(&snapshot);
        // `fold` counts traces; report actual LP pipelines run instead.
        agg.solves = cold_solves;
        agg.merge(&extra);
        shared.merge_metrics(&agg);
        shared
            .spans
            .lock()
            .expect("spans poisoned")
            .merge(&snapshot.spans);
        if let Some(log) = &shared.access_log {
            let _ = log.write_line(&access_line(
                &job,
                &response,
                cache_outcome,
                queue_wait_ns,
                solve_ns,
            ));
        }
        let _ = job.reply.send(response);
    }
}

fn backend_name(backend: SolverBackend) -> &'static str {
    match backend {
        SolverBackend::Simplex => "simplex",
        SolverBackend::InteriorPoint => "ipm",
        SolverBackend::Revised => "revised",
        SolverBackend::Dp => "dp",
    }
}

/// Status for the access log, recovered from the response envelope: the
/// first `"status"` key is always the envelope's own (the head precedes
/// any embedded payload), and error envelopes carry their wire code.
fn response_status(response: &str) -> &str {
    match response.split_once("\"status\":\"") {
        Some((_, rest)) if rest.starts_with("error") => rest
            .split_once("\"code\":\"")
            .and_then(|(_, r)| r.split('"').next())
            .unwrap_or("error"),
        _ => "ok",
    }
}

/// One JSON access-log line (without its newline). `bytes` counts the
/// response as written on the wire, newline included.
fn access_line(
    job: &Job,
    response: &str,
    cache: &str,
    queue_wait_ns: u64,
    solve_ns: u64,
) -> String {
    format!(
        "{{\"id\":\"{}\",\"op\":\"{}\",\"backend\":\"{}\",\"queue_depth\":{},\"cache\":\"{}\",\"queue_wait_ns\":{},\"solve_ns\":{},\"status\":\"{}\",\"bytes\":{}}}",
        json_escape(&job.request.id),
        job.request.op.name(),
        backend_name(job.request.backend),
        job.queue_depth,
        cache,
        queue_wait_ns,
        solve_ns,
        response_status(response),
        response.len() + 1,
    )
}

/// Builds the solve pipeline for one instance of `req` with `threads`
/// intra-solve workers. Bounds come through the checked constructor:
/// wire input must never be able to panic a worker.
fn builder_for(req: &Request, inst: &Instance, threads: usize) -> Result<LubtBuilder, LubtError> {
    let (lo, up) = req.window_for(inst);
    let bounds = DelayBounds::from_pairs(vec![(lo, up); inst.sinks.len()])?;
    let mut builder = LubtBuilder::new(inst.sinks.clone())
        .bounds(bounds)
        .backend(req.backend)
        .threads(threads.max(1));
    if let Some(src) = inst.source {
        builder = builder.source(src);
    }
    Ok(builder)
}

/// How many cores the *other* (currently idle) workers can lend this
/// worker's solve. `busy` includes the caller, so a lone active worker
/// on a `W`-worker daemon gets `W - 1` donated threads.
fn donated_threads(shared: &Shared) -> usize {
    let workers = shared.config.effective_workers();
    let busy = shared.busy.load(Ordering::Relaxed).clamp(1, workers);
    workers - busy
}

/// Resolves the intra-solve width for one request and records the
/// donation under the scheduling-exempt `pool.` prefix.
fn assist_width(shared: &Shared, rec: &TraceRecorder) -> usize {
    let donated = donated_threads(shared);
    if donated > 0 {
        rec.incr("pool.assist.donated", donated as u64);
    }
    1 + donated
}

fn execute(
    req: &Request,
    shared: &Arc<Shared>,
    rec: &Arc<TraceRecorder>,
    extra: &mut AggregateTrace,
    cold_solves: &mut u64,
    cache_outcome: &mut &'static str,
) -> String {
    match req.op {
        Op::Lint => run_lint(req, rec),
        Op::Solve => {
            match solve_one(
                req,
                &req.instances[0],
                shared,
                rec,
                cold_solves,
                cache_outcome,
            ) {
                Ok(payload) => protocol::ok_solution(&req.id, Op::Solve, &payload),
                Err(e) => solver_error(req, &e, rec),
            }
        }
        Op::Audit => {
            // Audits always run the pipeline (the certificate promise
            // forbids cached answers), so the outcome is always cold.
            *cache_outcome = "cold";
            run_audit(req, shared, rec, cold_solves)
        }
        Op::Batch => {
            *cache_outcome = "mixed";
            run_batch(req, shared, rec, extra, cold_solves)
        }
        // Ping and shutdown are answered inline by the connection
        // thread and never reach the queue.
        Op::Ping | Op::Shutdown => {
            protocol::error_response(&req.id, codes::BAD_REQUEST, "op is not queueable")
        }
    }
}

fn solver_error(req: &Request, e: &LubtError, rec: &Arc<TraceRecorder>) -> String {
    rec.incr("serve.solver_errors", 1);
    protocol::error_response(&req.id, protocol::error_code_for(e), &e.to_string())
}

/// The three-tier solve: result cache, warm session pool, cold solve.
/// Every tier yields byte-identical payloads (DESIGN.md §15) — the
/// cache stores exact bytes, and a warm replay re-derives the exact
/// solution the cold solve produced.
fn solve_one(
    req: &Request,
    inst: &Instance,
    shared: &Arc<Shared>,
    rec: &Arc<TraceRecorder>,
    cold_solves: &mut u64,
    cache_outcome: &mut &'static str,
) -> Result<String, LubtError> {
    *cache_outcome = "cold";
    let key = req.cache_key(inst);
    if shared.config.cache_entries > 0 {
        let _span = SpanGuard::enter(&**rec, "cache_lookup");
        let mut cache = shared.cache.lock().expect("cache poisoned");
        if let Some(hit) = cache.get(&key) {
            rec.incr("serve.cache_hits", 1);
            *cache_outcome = "cached";
            return Ok(hit.clone());
        }
    }
    if shared.config.session_entries > 0 {
        let checkout = shared
            .sessions
            .lock()
            .expect("sessions poisoned")
            .take(&key);
        if let Some(mut warm) = checkout {
            let warm_span = SpanGuard::enter(&**rec, "warm_resolve");
            let resolved = warm.resolve();
            drop(warm_span);
            match resolved {
                Ok(solution) => {
                    rec.incr("serve.warm_hits", 1);
                    *cache_outcome = "warm";
                    let serialize_span = SpanGuard::enter(&**rec, "serialize");
                    let payload = protocol::single_line(&solution_to_json(&solution));
                    drop(serialize_span);
                    shared
                        .sessions
                        .lock()
                        .expect("sessions poisoned")
                        .insert(&key, warm);
                    if shared.config.cache_entries > 0 {
                        shared
                            .cache
                            .lock()
                            .expect("cache poisoned")
                            .insert(&key, payload.clone());
                    }
                    return Ok(payload);
                }
                Err(_) => {
                    // A session that stopped resolving is dropped; the
                    // cold path below answers authoritatively.
                    rec.incr("serve.warm_failures", 1);
                }
            }
        }
    }
    let builder = builder_for(req, inst, assist_width(shared, rec))?;
    let (solution, warm) = builder.solve_retaining_recorded(Arc::clone(rec) as Arc<dyn Recorder>)?;
    *cold_solves += 1;
    rec.incr("serve.cold_solves", 1);
    let serialize_span = SpanGuard::enter(&**rec, "serialize");
    let payload = protocol::single_line(&solution_to_json(&solution));
    drop(serialize_span);
    if shared.config.cache_entries > 0 {
        shared
            .cache
            .lock()
            .expect("cache poisoned")
            .insert(&key, payload.clone());
    }
    if shared.config.session_entries > 0 {
        if let Some(w) = warm {
            shared
                .sessions
                .lock()
                .expect("sessions poisoned")
                .insert(&key, w);
        }
    }
    Ok(payload)
}

/// Audited solves bypass both cache tiers: `audit` promises exact
/// certificate verification on *this* request, which a cached or
/// replayed answer would silently skip.
fn run_audit(
    req: &Request,
    shared: &Arc<Shared>,
    rec: &Arc<TraceRecorder>,
    cold_solves: &mut u64,
) -> String {
    let outcome = builder_for(req, &req.instances[0], assist_width(shared, rec))
        .map(|b| b.audit(true))
        .and_then(|builder| builder.solve_retaining_recorded(Arc::clone(rec) as Arc<dyn Recorder>));
    match outcome {
        Ok((solution, _)) => {
            *cold_solves += 1;
            rec.incr("serve.audited_solves", 1);
            let payload = protocol::single_line(&solution_to_json(&solution));
            protocol::ok_solution(&req.id, Op::Audit, &payload)
        }
        Err(e) => solver_error(req, &e, rec),
    }
}

fn run_lint(req: &Request, rec: &Arc<TraceRecorder>) -> String {
    let inst = &req.instances[0];
    let (lo, up) = req.window_for(inst);
    let outcome = DelayBounds::from_pairs(vec![(lo, up); inst.sinks.len()]).and_then(|bounds| {
        let mut builder = LubtBuilder::new(inst.sinks.clone()).bounds(bounds);
        if let Some(src) = inst.source {
            builder = builder.source(src);
        }
        builder.build()
    });
    match outcome {
        Ok(problem) => {
            rec.incr("serve.lints", 1);
            let diags = problem.lint();
            let deny = diags.iter().any(lubt_lint::Diagnostic::is_deny);
            let payload = protocol::single_line(&lubt_lint::diagnostics_to_json(&diags));
            protocol::ok_lint(&req.id, deny, &payload)
        }
        Err(e) => solver_error(req, &e, rec),
    }
}

/// The batch path: cache-hitting instances answer from stored bytes;
/// the rest go through [`BatchSolver`] (single-threaded inside this
/// worker — the daemon's parallelism budget is spent across workers).
/// Batch results are bit-identical to standalone solves, so the two
/// sources can share one cache.
fn run_batch(
    req: &Request,
    shared: &Arc<Shared>,
    rec: &Arc<TraceRecorder>,
    extra: &mut AggregateTrace,
    cold_solves: &mut u64,
) -> String {
    let mut parts: Vec<Option<String>> = vec![None; req.instances.len()];
    let mut cold = Vec::new();
    let mut cold_slots = Vec::new();
    for (i, inst) in req.instances.iter().enumerate() {
        let key = req.cache_key(inst);
        if shared.config.cache_entries > 0 {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            if let Some(hit) = cache.get(&key) {
                rec.incr("serve.cache_hits", 1);
                parts[i] = Some(protocol::batch_part_ok(hit));
                continue;
            }
        }
        // Batch keeps one thread per instance: its parallelism budget is
        // already spent across the daemon's workers.
        match builder_for(req, inst, 1).and_then(|b| b.build()) {
            Ok(problem) => {
                cold.push(problem);
                cold_slots.push(i);
            }
            Err(e) => {
                rec.incr("serve.solver_errors", 1);
                parts[i] = Some(protocol::batch_part_err(
                    protocol::error_code_for(&e),
                    &e.to_string(),
                ));
            }
        }
    }
    if !cold.is_empty() {
        let solver = EbfSolver::new().with_backend(req.backend);
        let (results, trace) = BatchSolver::new()
            .with_threads(1)
            .with_solver(solver)
            .with_event_cap(shared.config.trace_event_cap)
            .solve_all_traced(&cold);
        let solved = results.iter().filter(|r| r.is_ok()).count() as u64;
        *cold_solves += solved;
        rec.incr("serve.batch_instances", cold.len() as u64);
        let mut batch_agg = AggregateTrace::new();
        batch_agg.fold(&trace);
        batch_agg.solves = 0; // the worker already counts them
        extra.merge(&batch_agg);
        for (&slot, result) in cold_slots.iter().zip(results) {
            match result {
                Ok(solution) => {
                    let payload = protocol::single_line(&solution_to_json(&solution));
                    if shared.config.cache_entries > 0 {
                        let key = req.cache_key(&req.instances[slot]);
                        shared
                            .cache
                            .lock()
                            .expect("cache poisoned")
                            .insert(&key, payload.clone());
                    }
                    parts[slot] = Some(protocol::batch_part_ok(&payload));
                }
                Err(e) => {
                    rec.incr("serve.solver_errors", 1);
                    parts[slot] = Some(protocol::batch_part_err(
                        protocol::error_code_for(&e),
                        &e.to_string(),
                    ));
                }
            }
        }
    }
    let parts: Vec<String> = parts
        .into_iter()
        .map(|p| p.expect("every batch slot is filled"))
        .collect();
    protocol::ok_batch(&req.id, &parts)
}

/// Plain-HTTP `/metrics`: enough of HTTP/1.0 for curl and Prometheus
/// to scrape, nothing more. Headers are read with the same byte
/// discipline as frames (bounded, never buffered unboundedly).
fn serve_metrics(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let mut request_line = String::new();
    (&mut *reader).take(4096).read_line(&mut request_line)?;
    // Drain headers up to a hard cap so a hostile scraper cannot feed
    // us headers forever; past the cap we just answer.
    let mut header_budget: u64 = 16 * 1024;
    loop {
        let mut line = String::new();
        let n = (&mut *reader)
            .take(header_budget.min(4096))
            .read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        header_budget = header_budget.saturating_sub(n as u64);
        if header_budget == 0 {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path == "/" {
        shared.record_bookkeeping(|rec| rec.incr("serve.metrics_scrapes", 1));
        (
            "200 OK",
            shared
                .metrics
                .lock()
                .expect("metrics poisoned")
                .to_prometheus(),
        )
    } else if path == "/healthz" {
        // Liveness/readiness: 200 while accepting, 503 once draining.
        shared.record_bookkeeping(|rec| rec.incr("serve.health_checks", 1));
        let draining = shared.stopping.load(Ordering::SeqCst);
        let body = format!(
            "{{\"status\":\"{}\",\"uptime_seconds\":{},\"queue_depth\":{},\"cache_entries\":{}}}\n",
            if draining { "draining" } else { "accepting" },
            shared.started.elapsed().as_secs(),
            shared.queue.len(),
            shared.cache.lock().expect("cache poisoned").len(),
        );
        (
            if draining {
                "503 Service Unavailable"
            } else {
                "200 OK"
            },
            body,
        )
    } else {
        (
            "404 Not Found",
            "only /metrics and /healthz live here\n".to_string(),
        )
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}
