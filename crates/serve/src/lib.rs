//! A long-lived LUBT solver daemon (`lubt serve`).
//!
//! Routing workloads are repeated-nearby-instance streams: thousands of
//! nets, many identical across requests. This crate turns the batch
//! library into a service shaped for that traffic — a dependency-free,
//! thread-per-core TCP daemon speaking a line-delimited JSON protocol
//! (`lubt-serve-v1`) over the existing solve/batch/lint/audit surface:
//!
//! * a **bounded admission queue** with per-request priorities and
//!   deadlines ([`queue`]),
//! * an **LRU result cache** keyed on the canonical instance digest
//!   (`lubt_data::canonical`) plus the resolved absolute delay window
//!   ([`cache`]),
//! * a **warm session pool** of retained LP bases
//!   ([`lubt_core::WarmLubtSession`]) replayed with zero pivots,
//! * **graceful shutdown** that drains every admitted request,
//! * a live **`/metrics`** endpoint serving
//!   [`lubt_obs::AggregateTrace::to_prometheus`] over plain HTTP.
//!
//! # The serving-mode determinism contract
//!
//! Every response is byte-identical whether it was computed cold, served
//! from the result cache, or replayed from a warm session (DESIGN.md
//! §15). This extends the §9 thread-count contract to the service layer
//! and is what makes the cache and session pool safe to enable: a client
//! cannot observe *how* its answer was produced.
//!
//! # Example
//!
//! ```
//! use lubt_serve::{ServeConfig, Server};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! writeln!(conn, r#"{{"op":"ping","id":"hello"}}"#).unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert!(line.contains("\"status\":\"ok\""));
//! drop(conn);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod protocol;
pub mod queue;
mod server;

pub use config::ServeConfig;
pub use protocol::PROTOCOL;
pub use server::Server;
