//! The `lubt-serve-v1` wire protocol.
//!
//! One JSON object per line, in both directions. Requests name an `op`
//! (`ping`, `solve`, `audit`, `lint`, `batch`, `shutdown`) plus the
//! instance(s) and delay window; responses echo the request `id` and
//! carry either the payload or a machine-readable error code. Parsing is
//! **strict**: unknown fields, duplicate keys (rejected by the JSON
//! layer), wrong types, non-finite coordinates and out-of-range knobs
//! are all `bad-request` — on a wire surface, silently ignoring a
//! mistyped field is how a client ships with bounds that never applied.
//!
//! Responses are built from the same formatting helpers regardless of
//! how the result was produced, which is half of the cold/cached/warm
//! byte-identity contract (the other half is the solver's own §9
//! determinism).

use lubt_core::{LubtError, SolverBackend};
use lubt_data::Instance;
use lubt_geom::Point;
use lubt_obs::json::{json_escape, Value};

/// Protocol identifier, echoed in every response `schema` field.
pub const PROTOCOL: &str = "lubt-serve-v1";

/// Machine-readable error codes.
pub mod codes {
    /// Malformed JSON, unknown/mistyped fields, invalid instances.
    pub const BAD_REQUEST: &str = "bad-request";
    /// Request frame exceeded the configured byte cap.
    pub const OVERSIZED: &str = "oversized";
    /// The admission queue is at capacity.
    pub const QUEUE_FULL: &str = "queue-full";
    /// The request's deadline passed before a worker picked it up.
    pub const DEADLINE_EXPIRED: &str = "deadline-expired";
    /// The daemon is draining; no new work is admitted.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The op exists but is disabled by configuration.
    pub const FORBIDDEN: &str = "forbidden";
    /// The LP is infeasible: no LUBT exists for these bounds (a
    /// certificate, not a failure).
    pub const INFEASIBLE: &str = "infeasible";
    /// The pre-solve lint rejected the instance before any LP was built.
    pub const REJECTED: &str = "rejected";
    /// The exact certificate audit refuted the solver's output.
    pub const AUDIT_FAILED: &str = "audit-failed";
    /// Any other solver-side failure (iteration limit, numerics, ...).
    pub const SOLVER_ERROR: &str = "solver-error";
}

/// Request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Solve one instance (cache + warm pool eligible).
    Solve,
    /// Solve one instance with exact certificate auditing (always cold).
    Audit,
    /// Static feasibility lint, no LP.
    Lint,
    /// Solve many instances through the batch path.
    Batch,
    /// Begin graceful shutdown (requires `--allow-shutdown`).
    Shutdown,
}

impl Op {
    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Solve => "solve",
            Op::Audit => "audit",
            Op::Lint => "lint",
            Op::Batch => "batch",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A protocol-level rejection: the error code plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of [`codes`].
    pub code: &'static str,
    /// Human-readable detail, safe to echo to the client.
    pub message: String,
}

impl ProtocolError {
    fn bad(message: impl Into<String>) -> Self {
        ProtocolError {
            code: codes::BAD_REQUEST,
            message: message.into(),
        }
    }
}

/// A validated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Scheduling priority `0..=9` (higher pops sooner; default 5).
    pub priority: u8,
    /// Optional deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// The instance(s): exactly one for `solve`/`audit`/`lint`, any
    /// number for `batch`, empty for `ping`/`shutdown`.
    pub instances: Vec<Instance>,
    /// Lower delay bound as sent (radius-relative unless `absolute`).
    pub lower: f64,
    /// Upper delay bound as sent; `None` only for `lint` (no cap).
    pub upper: Option<f64>,
    /// When true, `lower`/`upper` are absolute wire units.
    pub absolute: bool,
    /// LP backend for `solve`/`audit`/`batch`.
    pub backend: SolverBackend,
}

impl Request {
    /// The absolute delay window for `inst`, mirroring the CLI's
    /// radius-relative convention (`upper` `None` maps to `+inf`, the
    /// lint default).
    pub fn window_for(&self, inst: &Instance) -> (f64, f64) {
        let scale = if self.absolute { 1.0 } else { inst.radius() };
        (
            self.lower * scale,
            self.upper.map_or(f64::INFINITY, |u| u * scale),
        )
    }

    /// The result-cache / session-pool key for `inst` under this
    /// request's solving parameters: canonical instance digest plus the
    /// window *resolved to absolute units*, so relative and absolute
    /// spellings of the same window share an entry. (`+ 0.0` folds
    /// `-0.0` into `0.0` so the two zero spellings cannot split keys.)
    pub fn cache_key(&self, inst: &Instance) -> String {
        let (lo, up) = self.window_for(inst);
        format!(
            "{:?}|{}|{}|{}",
            self.backend,
            lo + 0.0,
            up + 0.0,
            lubt_data::canonical::canonical_digest(inst)
        )
    }
}

fn parse_point(v: &Value, what: &str) -> Result<Point, ProtocolError> {
    let items = v
        .as_array()
        .ok_or_else(|| ProtocolError::bad(format!("{what} must be a [x, y] array")))?;
    if items.len() != 2 {
        return Err(ProtocolError::bad(format!(
            "{what} must have exactly 2 coordinates, got {}",
            items.len()
        )));
    }
    let mut xy = [0.0f64; 2];
    for (k, item) in items.iter().enumerate() {
        let c = item
            .as_f64()
            .ok_or_else(|| ProtocolError::bad(format!("{what} coordinates must be numbers")))?;
        if !c.is_finite() {
            return Err(ProtocolError::bad(format!(
                "{what} coordinates must be finite"
            )));
        }
        xy[k] = c;
    }
    Ok(Point::new(xy[0], xy[1]))
}

fn parse_instance(v: &Value) -> Result<Instance, ProtocolError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| ProtocolError::bad("instance must be an object"))?;
    let mut name = String::new();
    let mut source = None;
    let mut sinks = Vec::new();
    for (key, value) in pairs {
        match key.as_str() {
            "name" => {
                name = value
                    .as_str()
                    .ok_or_else(|| ProtocolError::bad("instance name must be a string"))?
                    .to_string();
            }
            "source" => {
                source = match value {
                    Value::Null => None,
                    other => Some(parse_point(other, "source")?),
                };
            }
            "sinks" => {
                let items = value
                    .as_array()
                    .ok_or_else(|| ProtocolError::bad("sinks must be an array of [x, y]"))?;
                sinks = items
                    .iter()
                    .map(|p| parse_point(p, "sink"))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => {
                return Err(ProtocolError::bad(format!(
                    "unknown instance field {other:?}"
                )))
            }
        }
    }
    if sinks.is_empty() {
        return Err(ProtocolError::bad("instance needs at least one sink"));
    }
    Ok(Instance::new(name, source, sinks))
}

fn parse_bound(value: &Value, what: &str) -> Result<f64, ProtocolError> {
    let x = value
        .as_f64()
        .ok_or_else(|| ProtocolError::bad(format!("{what} must be a number")))?;
    if !x.is_finite() {
        return Err(ProtocolError::bad(format!("{what} must be finite")));
    }
    Ok(x)
}

/// Validates one parsed request document.
///
/// # Errors
///
/// [`ProtocolError`] with code `bad-request` describing the first
/// problem found.
pub fn parse_request(doc: &Value) -> Result<Request, ProtocolError> {
    let pairs = doc
        .as_object()
        .ok_or_else(|| ProtocolError::bad("request must be a JSON object"))?;
    let mut op = None;
    let mut id = String::new();
    let mut priority = 5u8;
    let mut deadline_ms = None;
    let mut instances = Vec::new();
    let mut saw_instances_field = false;
    let mut lower = 0.0;
    let mut upper = None;
    let mut absolute = false;
    let mut backend = SolverBackend::Revised;
    for (key, value) in pairs {
        match key.as_str() {
            "op" => {
                op = Some(match value.as_str() {
                    Some("ping") => Op::Ping,
                    Some("solve") => Op::Solve,
                    Some("audit") => Op::Audit,
                    Some("lint") => Op::Lint,
                    Some("batch") => Op::Batch,
                    Some("shutdown") => Op::Shutdown,
                    Some(other) => {
                        return Err(ProtocolError::bad(format!(
                            "unknown op {other:?} (ping|solve|audit|lint|batch|shutdown)"
                        )))
                    }
                    None => return Err(ProtocolError::bad("op must be a string")),
                });
            }
            "id" => {
                id = value
                    .as_str()
                    .ok_or_else(|| ProtocolError::bad("id must be a string"))?
                    .to_string();
            }
            "priority" => {
                let p = value
                    .as_u64()
                    .ok_or_else(|| ProtocolError::bad("priority must be an integer"))?;
                if p > 9 {
                    return Err(ProtocolError::bad(format!(
                        "priority must be 0..=9, got {p}"
                    )));
                }
                priority = p as u8;
            }
            "deadline_ms" => {
                deadline_ms = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| ProtocolError::bad("deadline_ms must be an integer"))?,
                );
            }
            "instance" => instances.push(parse_instance(value)?),
            "instances" => {
                saw_instances_field = true;
                let items = value
                    .as_array()
                    .ok_or_else(|| ProtocolError::bad("instances must be an array"))?;
                for item in items {
                    instances.push(parse_instance(item)?);
                }
            }
            "lower" => lower = parse_bound(value, "lower")?,
            "upper" => upper = Some(parse_bound(value, "upper")?),
            "absolute" => {
                absolute = match value {
                    Value::Bool(b) => *b,
                    _ => return Err(ProtocolError::bad("absolute must be a boolean")),
                };
            }
            "backend" => {
                backend = match value.as_str() {
                    Some("simplex") => SolverBackend::Simplex,
                    Some("ipm") => SolverBackend::InteriorPoint,
                    Some("revised") => SolverBackend::Revised,
                    Some("dp") => SolverBackend::Dp,
                    Some(other) => {
                        return Err(ProtocolError::bad(format!(
                            "unknown backend {other:?} (simplex|ipm|revised|dp)"
                        )))
                    }
                    None => return Err(ProtocolError::bad("backend must be a string")),
                };
            }
            other => return Err(ProtocolError::bad(format!("unknown field {other:?}"))),
        }
    }
    let op = op.ok_or_else(|| ProtocolError::bad("missing required field \"op\""))?;
    match op {
        Op::Ping | Op::Shutdown => {
            if !instances.is_empty() {
                return Err(ProtocolError::bad(format!(
                    "{:?} takes no instance",
                    op.name()
                )));
            }
        }
        Op::Solve | Op::Audit | Op::Lint => {
            if saw_instances_field {
                return Err(ProtocolError::bad(format!(
                    "{} takes a single \"instance\", not \"instances\"",
                    op.name()
                )));
            }
            if instances.len() != 1 {
                return Err(ProtocolError::bad(format!(
                    "{} requires an \"instance\"",
                    op.name()
                )));
            }
        }
        Op::Batch => {
            if !saw_instances_field || instances.is_empty() {
                return Err(ProtocolError::bad(
                    "batch requires a non-empty \"instances\" array",
                ));
            }
        }
    }
    if matches!(op, Op::Solve | Op::Audit | Op::Batch) && upper.is_none() {
        return Err(ProtocolError::bad(format!(
            "{} requires \"upper\"",
            op.name()
        )));
    }
    Ok(Request {
        op,
        id,
        priority,
        deadline_ms,
        instances,
        lower,
        upper,
        absolute,
        backend,
    })
}

/// Collapses a pretty-printed JSON document to one line. The repo's
/// emitters only break lines between tokens (JSON strings cannot span
/// lines), so dropping the newline plus the next line's indentation is
/// exact.
pub fn single_line(doc: &str) -> String {
    doc.lines().map(str::trim_start).collect()
}

fn response_head(id: &str, op: Op) -> String {
    format!(
        "{{\"schema\":\"{PROTOCOL}\",\"id\":\"{}\",\"op\":\"{}\",\"status\":",
        json_escape(id),
        op.name()
    )
}

/// The `ping` response.
pub fn ok_ping(id: &str) -> String {
    format!(
        "{}\"ok\",\"protocol\":\"{PROTOCOL}\"}}",
        response_head(id, Op::Ping)
    )
}

/// The `shutdown` acknowledgement.
pub fn ok_shutdown(id: &str) -> String {
    format!(
        "{}\"ok\",\"draining\":true}}",
        response_head(id, Op::Shutdown)
    )
}

/// A successful `solve`/`audit` response wrapping a single-line
/// solution document. The payload is byte-identical across serving
/// modes, so the whole response is too.
pub fn ok_solution(id: &str, op: Op, payload: &str) -> String {
    let audited = if op == Op::Audit {
        "\"audited\":true,"
    } else {
        ""
    };
    format!(
        "{}\"ok\",{audited}\"solution\":{payload}}}",
        response_head(id, op)
    )
}

/// A successful `lint` response wrapping single-line diagnostics.
pub fn ok_lint(id: &str, deny: bool, payload: &str) -> String {
    format!(
        "{}\"ok\",\"deny\":{deny},\"diagnostics\":{payload}}}",
        response_head(id, Op::Lint)
    )
}

/// One element of a `batch` response: a solved payload.
pub fn batch_part_ok(payload: &str) -> String {
    format!("{{\"status\":\"ok\",\"solution\":{payload}}}")
}

/// One element of a `batch` response: a per-instance failure.
pub fn batch_part_err(code: &str, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"code\":\"{code}\",\"message\":\"{}\"}}",
        json_escape(message)
    )
}

/// A successful `batch` response from per-instance parts.
pub fn ok_batch(id: &str, parts: &[String]) -> String {
    format!(
        "{}\"ok\",\"results\":[{}]}}",
        response_head(id, Op::Batch),
        parts.join(",")
    )
}

/// An error response (any op, also pre-parse failures with an empty
/// `id`).
pub fn error_response(id: &str, code: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"{PROTOCOL}\",\"id\":\"{}\",\"status\":\"error\",\"code\":\"{code}\",\"message\":\"{}\"}}",
        json_escape(id),
        json_escape(message)
    )
}

/// Maps a solver failure to its wire error code.
pub fn error_code_for(e: &LubtError) -> &'static str {
    match e {
        LubtError::Input(_) => codes::BAD_REQUEST,
        LubtError::Infeasible => codes::INFEASIBLE,
        LubtError::Rejected(_) => codes::REJECTED,
        LubtError::Audit(_) => codes::AUDIT_FAILED,
        _ => codes::SOLVER_ERROR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_obs::json::parse;

    fn req(text: &str) -> Result<Request, ProtocolError> {
        parse_request(&parse(text).expect("test doc parses"))
    }

    #[test]
    fn parses_a_full_solve_request() {
        let r = req(r#"{"op":"solve","id":"r1","priority":7,"deadline_ms":250,
                "instance":{"name":"n","source":[5,5],"sinks":[[0,0],[10,0]]},
                "lower":0.5,"upper":1.2,"backend":"simplex"}"#)
        .unwrap();
        assert_eq!(r.op, Op::Solve);
        assert_eq!(r.id, "r1");
        assert_eq!(r.priority, 7);
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.instances.len(), 1);
        assert_eq!(r.backend, SolverBackend::Simplex);
        let (lo, up) = r.window_for(&r.instances[0]);
        let radius = r.instances[0].radius();
        assert!((lo - 0.5 * radius).abs() < 1e-12);
        assert!((up - 1.2 * radius).abs() < 1e-12);
    }

    #[test]
    fn strictness_rejects_what_a_file_parser_would_shrug_at() {
        let cases = [
            (r#"[1,2]"#, "request must be a JSON object"),
            (r#"{"id":"x"}"#, "missing required field \"op\""),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"ping","prio":3}"#, "unknown field \"prio\""),
            (r#"{"op":"ping","priority":10}"#, "priority must be 0..=9"),
            (
                r#"{"op":"ping","priority":1.5}"#,
                "priority must be an integer",
            ),
            (r#"{"op":"solve","upper":1.0}"#, "requires an \"instance\""),
            (
                r#"{"op":"solve","instance":{"sinks":[[0,0]]}}"#,
                "requires \"upper\"",
            ),
            (
                r#"{"op":"solve","upper":1.0,"instance":{"sinks":[]}}"#,
                "at least one sink",
            ),
            (
                r#"{"op":"solve","upper":1.0,"instance":{"sinks":[[0,0,0]]}}"#,
                "exactly 2 coordinates",
            ),
            (
                r#"{"op":"solve","upper":1e999,"instance":{"sinks":[[0,0]]}}"#,
                "upper must be finite",
            ),
            (
                r#"{"op":"solve","upper":1.0,"instance":{"sinks":[[0,0]],"die":10}}"#,
                "unknown instance field",
            ),
            (
                r#"{"op":"batch","upper":1.0,"instances":[]}"#,
                "non-empty \"instances\"",
            ),
            (
                r#"{"op":"lint","instances":[{"sinks":[[0,0]]}]}"#,
                "single \"instance\"",
            ),
            (
                r#"{"op":"shutdown","instance":{"sinks":[[0,0]]}}"#,
                "takes no instance",
            ),
            (
                r#"{"op":"solve","upper":1.0,"absolute":1,"instance":{"sinks":[[0,0]]}}"#,
                "absolute must be a boolean",
            ),
            (
                r#"{"op":"solve","upper":1.0,"backend":"gpu","instance":{"sinks":[[0,0]]}}"#,
                "unknown backend",
            ),
        ];
        for (text, needle) in cases {
            let err = req(text).expect_err(text);
            assert_eq!(err.code, codes::BAD_REQUEST, "{text}");
            assert!(
                err.message.contains(needle),
                "{text}: {:?} missing {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn cache_keys_unify_spellings_and_split_semantics() {
        let a = req(r#"{"op":"solve","upper":1.0,"instance":{"name":"t","sinks":[[0,0],[10,0]]}}"#)
            .unwrap();
        // The same window spelled absolutely (radius of t is 10 from the
        // implied centroid source... compute via the instance itself).
        let inst = &a.instances[0];
        let (lo, up) = a.window_for(inst);
        let b = Request {
            absolute: true,
            lower: lo,
            upper: Some(up),
            ..a.clone()
        };
        assert_eq!(a.cache_key(inst), b.cache_key(inst));
        // A different backend or window must split.
        let c = Request {
            backend: SolverBackend::Simplex,
            ..a.clone()
        };
        assert_ne!(a.cache_key(inst), c.cache_key(inst));
        let d = Request {
            upper: Some(2.0),
            ..a.clone()
        };
        assert_ne!(a.cache_key(inst), d.cache_key(inst));
    }

    #[test]
    fn responses_are_single_line_and_echo_ids() {
        let multi = "{\n  \"cost\": 1.5,\n  \"edges\": [\n    1,\n    2\n  ]\n}\n";
        let flat = single_line(multi);
        assert_eq!(flat, "{\"cost\": 1.5,\"edges\": [1,2]}");
        for line in [
            ok_ping("a\"b"),
            ok_solution("a\"b", Op::Solve, &flat),
            ok_solution("a\"b", Op::Audit, &flat),
            ok_lint("a\"b", true, "[]"),
            ok_batch(
                "a\"b",
                &[
                    batch_part_ok(&flat),
                    batch_part_err("infeasible", "no\nway"),
                ],
            ),
            ok_shutdown("a\"b"),
            error_response("a\"b", codes::QUEUE_FULL, "try\nlater"),
        ] {
            assert!(!line.contains('\n'), "one frame per line: {line}");
            assert!(line.contains("a\\\"b"), "id is escaped: {line}");
            let doc = parse(&line).expect("every response parses as strict JSON");
            assert_eq!(doc.get("schema").and_then(Value::as_str), Some(PROTOCOL));
        }
        assert!(ok_solution("x", Op::Audit, "{}").contains("\"audited\":true"));
        assert!(!ok_solution("x", Op::Solve, "{}").contains("audited"));
    }

    #[test]
    fn solver_errors_map_to_stable_codes() {
        assert_eq!(
            error_code_for(&LubtError::Input("x".into())),
            codes::BAD_REQUEST
        );
        assert_eq!(error_code_for(&LubtError::Infeasible), codes::INFEASIBLE);
        assert_eq!(
            error_code_for(&LubtError::Rejected(Vec::new())),
            codes::REJECTED
        );
        assert_eq!(
            error_code_for(&LubtError::Audit(Vec::new())),
            codes::AUDIT_FAILED
        );
        assert_eq!(
            error_code_for(&LubtError::Embedding { node: 3 }),
            codes::SOLVER_ERROR
        );
    }
}
