//! Protocol-level integration tests: every case drives a real daemon
//! over real sockets, exactly as an untrusted client would.

use lubt_obs::json::{parse, Value};
use lubt_serve::{protocol::codes, ServeConfig, Server};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(line.ends_with('\n'), "framed response: {line:?}");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get(key).and_then(Value::as_str).unwrap_or("")
}

fn square_instance(name: &str) -> String {
    format!(r#"{{"name":"{name}","source":[5,5],"sinks":[[0,0],[10,0],[0,10],[10,10]]}}"#)
}

/// A deterministic pseudo-random instance, sized to keep a debug-build
/// worker busy for a while when batched.
fn grid_instance(name: &str, sinks: usize) -> String {
    let pts: Vec<String> = (0..sinks)
        .map(|k| {
            let x = (k * 37 % 101) as f64 + 0.25 * (k % 4) as f64;
            let y = (k * 61 % 97) as f64 + 0.5 * (k % 2) as f64;
            format!("[{x},{y}]")
        })
        .collect();
    format!(r#"{{"name":"{name}","sinks":[{}]}}"#, pts.join(","))
}

fn solve_line(id: &str, inst: &str) -> String {
    format!(r#"{{"op":"solve","id":"{id}","upper":1.4,"instance":{inst}}}"#)
}

#[test]
fn malformed_frames_get_bad_request_and_the_connection_survives() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(&server);
    let cases = [
        ("this is not json", "invalid JSON"),
        (r#"{"op":"ping","op":"ping"}"#, "duplicate object key"),
        (r#"{"op":"ping","bogus":1}"#, "unknown field"),
        (r#"[1,2,3]"#, "must be a JSON object"),
        (r#"{"op":"solve","id":"e1","upper":1.0}"#, "instance"),
    ];
    for (line, needle) in cases {
        let resp = c.roundtrip(line);
        let doc = parse(&resp).expect("error responses are strict JSON");
        assert_eq!(field(&doc, "status"), "error", "{line}");
        assert_eq!(field(&doc, "code"), codes::BAD_REQUEST, "{line}");
        assert!(field(&doc, "message").contains(needle), "{line}: {resp}");
    }
    // The id is echoed when the frame at least parsed as an object.
    let resp = c.roundtrip(r#"{"op":"solve","id":"e1","upper":1.0}"#);
    assert_eq!(field(&parse(&resp).unwrap(), "id"), "e1");
    // Framing is intact: the same connection still answers pings.
    let resp = c.roundtrip(r#"{"op":"ping","id":"still-alive"}"#);
    let doc = parse(&resp).unwrap();
    assert_eq!(field(&doc, "status"), "ok");
    assert_eq!(field(&doc, "id"), "still-alive");
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_closes() {
    let config = ServeConfig {
        max_request_bytes: 256,
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    let mut c = Client::connect(&server);
    let huge = format!(
        r#"{{"op":"solve","id":"big","upper":1.4,"instance":{}}}"#,
        grid_instance("big", 200)
    );
    assert!(huge.len() > 256);
    let resp = c.roundtrip(&huge);
    let doc = parse(&resp).unwrap();
    assert_eq!(field(&doc, "code"), codes::OVERSIZED);
    // The stream can no longer be framed, so the daemon closes it.
    let mut rest = String::new();
    c.reader.read_to_string(&mut rest).expect("EOF");
    assert!(
        rest.is_empty(),
        "no further frames after oversized: {rest:?}"
    );
    server.shutdown();
}

#[test]
fn a_zero_deadline_expires_before_solving() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(&server);
    let resp = c.roundtrip(&format!(
        r#"{{"op":"solve","id":"late","deadline_ms":0,"upper":1.4,"instance":{}}}"#,
        square_instance("sq")
    ));
    let doc = parse(&resp).unwrap();
    assert_eq!(field(&doc, "status"), "error");
    assert_eq!(field(&doc, "code"), codes::DEADLINE_EXPIRED);
    assert_eq!(field(&doc, "id"), "late");
    // Without the deadline the same request solves fine.
    let resp = c.roundtrip(&solve_line("ontime", &square_instance("sq")));
    assert_eq!(field(&parse(&resp).unwrap(), "status"), "ok");
    server.shutdown();
}

#[test]
fn a_full_queue_rejects_fast_instead_of_buffering() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        cache_entries: 0,
        session_entries: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();
    // Occupy the single worker with a batch big enough to outlast the
    // probes below by a wide margin (debug builds solve these slowly).
    let occupier = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        };
        let instances: Vec<String> = (0..12)
            .map(|k| grid_instance(&format!("occ{k}"), 110))
            .collect();
        let resp = c.roundtrip(&format!(
            r#"{{"op":"batch","id":"occupy","upper":1.5,"instances":[{}]}}"#,
            instances.join(",")
        ));
        assert_eq!(field(&parse(&resp).unwrap(), "status"), "ok");
    });
    // Give the worker time to pop the occupier off the queue.
    std::thread::sleep(Duration::from_millis(300));
    // This one parks in the queue (depth 1)...
    let mut waiter = Client::connect(&server);
    waiter.send(&solve_line("queued", &square_instance("sq")));
    std::thread::sleep(Duration::from_millis(100));
    // ...so the next admission must fail fast.
    let mut probe = Client::connect(&server);
    let resp = probe.roundtrip(&solve_line("overflow", &square_instance("sq")));
    let doc = parse(&resp).unwrap();
    assert_eq!(field(&doc, "status"), "error", "{resp}");
    assert_eq!(field(&doc, "code"), codes::QUEUE_FULL, "{resp}");
    // The queued request still completes once the worker frees up.
    let resp = waiter.recv();
    assert_eq!(field(&parse(&resp).unwrap(), "status"), "ok");
    occupier.join().unwrap();
    assert!(server
        .metrics_prometheus()
        .contains("lubt_serve_queue_full"));
    server.shutdown();
}

/// Runs `requests` against a fresh server with `workers` workers using
/// one thread per client connection; returns id → response.
fn run_fleet(workers: usize, requests: &[String]) -> BTreeMap<String, String> {
    let server = Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .unwrap();
    let handles: Vec<_> = requests
        .iter()
        .cloned()
        .map(|line| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut c = Client {
                    reader: BufReader::new(stream.try_clone().unwrap()),
                    writer: stream,
                };
                let resp = c.roundtrip(&line);
                let id = field(&parse(&resp).unwrap(), "id").to_string();
                (id, resp)
            })
        })
        .collect();
    let mut out = BTreeMap::new();
    for h in handles {
        let (id, resp) = h.join().unwrap();
        assert!(out.insert(id, resp).is_none(), "unique ids");
    }
    server.shutdown();
    out
}

#[test]
fn one_and_eight_workers_answer_byte_identically() {
    // 12 concurrent requests over 4 distinct instances: duplicates
    // exercise the cache and the warm pool under contention, different
    // backends exercise both LP paths.
    let mut requests = Vec::new();
    for k in 0..12 {
        let inst = grid_instance(&format!("net{}", k % 4), 8);
        let backend = if k % 2 == 0 { "revised" } else { "simplex" };
        requests.push(format!(
            r#"{{"op":"solve","id":"r{k}","upper":1.5,"backend":"{backend}","instance":{inst}}}"#
        ));
    }
    let solo = run_fleet(1, &requests);
    let fleet = run_fleet(8, &requests);
    assert_eq!(solo.len(), 12);
    for (id, resp) in &solo {
        assert_eq!(field(&parse(resp).unwrap(), "status"), "ok", "{id}: {resp}");
        assert_eq!(
            fleet.get(id),
            Some(resp),
            "{id} differs between 1 and 8 workers"
        );
    }
}

#[test]
fn cold_cached_and_warm_responses_are_byte_identical() {
    let line = solve_line("tiers", &grid_instance("tiered", 10));
    // Tier 1: cold, then result-cache hit on the same server.
    let cached_server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(&cached_server);
    let cold = c.roundtrip(&line);
    let cached = c.roundtrip(&line);
    assert_eq!(field(&parse(&cold).unwrap(), "status"), "ok", "{cold}");
    assert_eq!(cold, cached, "cached response differs from cold");
    let metrics = cached_server.metrics_prometheus();
    assert!(
        metrics.contains("lubt_serve_cache_hits_total 1"),
        "{metrics}"
    );
    cached_server.shutdown();
    // Tier 2: cache disabled, so the repeat replays the warm session.
    let warm_server = Server::start(ServeConfig {
        cache_entries: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut w = Client::connect(&warm_server);
    let cold2 = w.roundtrip(&line);
    let warm = w.roundtrip(&line);
    assert_eq!(cold, cold2, "cold responses differ across servers");
    assert_eq!(cold, warm, "warm replay differs from cold");
    let metrics = warm_server.metrics_prometheus();
    assert!(
        metrics.contains("lubt_serve_warm_hits_total 1"),
        "{metrics}"
    );
    assert!(
        !metrics.contains("lubt_serve_cache_hits_total 1"),
        "{metrics}"
    );
    warm_server.shutdown();
}

#[test]
fn healthz_reports_accepting_then_draining() {
    let server = Server::start(ServeConfig::default()).unwrap();
    // Accepting: 200 with the gauges as strict JSON.
    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    http.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 200 OK"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("http body");
    let doc = parse(body.trim_end()).expect("healthz body is strict JSON");
    assert_eq!(field(&doc, "status"), "accepting");
    assert!(doc.get("uptime_seconds").and_then(Value::as_f64).is_some());
    assert!(doc.get("queue_depth").and_then(Value::as_f64).is_some());
    assert!(doc.get("cache_entries").and_then(Value::as_f64).is_some());
    // Start a probe *before* draining and finish it after: the request
    // line parks the connection thread in the header read, shutdown
    // flips the flag, and the completed request must answer 503 so load
    // balancers stop routing here.
    let mut open = TcpStream::connect(server.addr()).unwrap();
    write!(open, "GET /healthz HTTP/1.0\r\nHost: x\r\n").unwrap();
    open.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    server.signal_shutdown();
    write!(open, "\r\n").unwrap();
    let mut raw = String::new();
    open.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 503"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("http body");
    assert_eq!(
        field(&parse(body.trim_end()).unwrap(), "status"),
        "draining"
    );
    server.wait();
}

#[test]
fn access_log_lines_are_structured_json() {
    let path = std::env::temp_dir().join(format!(
        "lubt-access-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let server = Server::start(ServeConfig {
        access_log: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(&server);
    let line = solve_line("cold1", &grid_instance("logged", 8));
    assert_eq!(field(&parse(&c.roundtrip(&line)).unwrap(), "status"), "ok");
    // Same instance again: answered from the result cache.
    let line2 = solve_line("hit1", &grid_instance("logged", 8));
    assert_eq!(field(&parse(&c.roundtrip(&line2)).unwrap(), "status"), "ok");
    // An unsatisfiable window (upper below the source-sink distance):
    // the log line carries the wire error code, not "ok".
    let resp = c.roundtrip(&format!(
        r#"{{"op":"solve","id":"tight","upper":0.1,"instance":{}}}"#,
        square_instance("sq")
    ));
    let wire_code = field(&parse(&resp).unwrap(), "code").to_string();
    assert!(!wire_code.is_empty(), "{resp}");
    server.shutdown();
    let text = std::fs::read_to_string(&path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one line per queued request: {text}");
    for l in &lines {
        parse(l).expect("access log lines are strict JSON");
    }
    let first = parse(lines[0]).unwrap();
    assert_eq!(field(&first, "id"), "cold1");
    assert_eq!(field(&first, "op"), "solve");
    assert_eq!(field(&first, "backend"), "revised");
    assert_eq!(field(&first, "cache"), "cold");
    assert_eq!(field(&first, "status"), "ok");
    assert!(first.get("queue_depth").and_then(Value::as_f64).is_some());
    assert!(first.get("queue_wait_ns").and_then(Value::as_f64).is_some());
    assert!(first.get("solve_ns").and_then(Value::as_f64).is_some());
    assert!(first.get("bytes").and_then(Value::as_f64).unwrap_or(0.0) > 2.0);
    let second = parse(lines[1]).unwrap();
    assert_eq!(field(&second, "id"), "hit1");
    assert_eq!(field(&second, "cache"), "cached");
    let third = parse(lines[2]).unwrap();
    assert_eq!(field(&third, "id"), "tight");
    assert_eq!(field(&third, "status"), wire_code, "{}", lines[2]);
    let _ = std::fs::remove_file(&path);
}

/// Runs `requests` concurrently against a fresh server and returns the
/// merged span-tree shape (`"path hits"` lines).
fn fleet_span_shape(workers: usize, requests: &[String]) -> String {
    let server = Server::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    })
    .unwrap();
    let handles: Vec<_> = requests
        .iter()
        .cloned()
        .map(|line| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut c = Client {
                    reader: BufReader::new(stream.try_clone().unwrap()),
                    writer: stream,
                };
                let resp = c.roundtrip(&line);
                assert_eq!(field(&parse(&resp).unwrap(), "status"), "ok", "{resp}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let shape = server.span_shape();
    server.shutdown();
    shape
}

#[test]
fn span_tree_shape_is_identical_across_worker_counts() {
    // Distinct instances so every request cold-solves regardless of
    // worker scheduling; the merged span shape is then a pure function
    // of the request multiset (DESIGN.md §16).
    let requests: Vec<String> = (0..6)
        .map(|k| {
            let backend = if k % 2 == 0 { "revised" } else { "simplex" };
            format!(
                r#"{{"op":"solve","id":"s{k}","upper":1.5,"backend":"{backend}","instance":{}}}"#,
                grid_instance(&format!("shape{k}"), 8)
            )
        })
        .collect();
    let solo = fleet_span_shape(1, &requests);
    let fleet = fleet_span_shape(8, &requests);
    assert!(!solo.is_empty(), "serve requests produce spans");
    assert!(solo.starts_with("request 6\n"), "{solo}");
    assert!(solo.contains("request/parse 6"), "{solo}");
    assert!(solo.contains("request/queue_wait 6"), "{solo}");
    assert!(solo.contains("request/solve"), "{solo}");
    assert_eq!(solo, fleet, "span shape must not depend on worker count");
}

#[test]
fn graceful_shutdown_drains_every_admitted_request() {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let clients: Vec<_> = (0..6)
        .map(|k| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut c = Client {
                    reader: BufReader::new(stream.try_clone().unwrap()),
                    writer: stream,
                };
                c.roundtrip(&solve_line(
                    &format!("drain{k}"),
                    &grid_instance(&format!("d{k}"), 10),
                ))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(120));
    server.shutdown(); // blocks until admitted requests are answered
    let mut ok = 0;
    for c in clients {
        let resp = c.join().unwrap();
        let doc = parse(&resp).expect("every client got a full frame");
        match field(&doc, "status") {
            "ok" => ok += 1,
            "error" => assert_eq!(
                field(&doc, "code"),
                codes::SHUTTING_DOWN,
                "admitted requests are never dropped: {resp}"
            ),
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    assert!(ok >= 1, "the in-flight requests were drained, not dropped");
}

#[test]
fn wire_shutdown_is_gated_and_metrics_speak_prometheus() {
    // Default: remote shutdown is forbidden.
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(&server);
    let resp = c.roundtrip(r#"{"op":"shutdown","id":"nope"}"#);
    assert_eq!(field(&parse(&resp).unwrap(), "code"), codes::FORBIDDEN);
    // Solve something so the scrape has solver families too.
    let resp = c.roundtrip(&solve_line("warmup", &square_instance("sq")));
    assert_eq!(field(&parse(&resp).unwrap(), "status"), "ok");
    // Scrape /metrics over plain HTTP on the same port.
    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    http.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 200 OK"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("http body");
    lubt_obs::prometheus::lint_exposition(body).expect("exposition-format clean");
    assert!(body.contains("lubt_serve_requests"), "{body}");
    assert!(body.contains("lubt_serve_cold_solves"), "{body}");
    // Unknown paths 404 instead of leaking the exposition.
    let mut http = TcpStream::connect(server.addr()).unwrap();
    write!(http, "GET /secrets HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    http.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.0 404"), "{raw}");
    server.shutdown();
    // Opt-in: the wire op acknowledges and drains.
    let server = Server::start(ServeConfig {
        allow_shutdown: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(&server);
    let resp = c.roundtrip(r#"{"op":"shutdown","id":"bye"}"#);
    let doc = parse(&resp).unwrap();
    assert_eq!(field(&doc, "status"), "ok");
    assert_eq!(field(&doc, "id"), "bye");
    server.wait(); // returns because the wire op signaled shutdown
}
