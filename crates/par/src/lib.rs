//! Dependency-free work-stealing parallelism for the LUBT workspace.
//!
//! Three layers, all built on `std` threads, `Mutex`/`Condvar` and atomics
//! only (the build environment is offline — no rayon, no crossbeam):
//!
//! * [`Pool`] — a persistent work-stealing thread pool for `'static` jobs.
//!   Each worker owns a deque; owners pop LIFO from the back, idle workers
//!   steal FIFO from the front of a victim's deque, and sleepers park on a
//!   condvar. Used for fire-and-forget jobs and the spawn/join stress
//!   tests. [`Pool::assist_loop`] / [`Pool::assist_reduce`] lend the
//!   pool's idle capacity to a borrowed intra-solve loop.
//! * [`parallel_map`] / [`parallel_flat_map`] — scoped, *deterministic*
//!   data-parallel iteration over an index range, in the style of the
//!   workassisting chunked self-scheduling loop. The range is split into
//!   chunks, chunks are distributed across per-worker deques, and idle
//!   workers steal; every chunk's output is buffered separately and the
//!   buffers are merged in ascending chunk order after the join. The
//!   result is **bit-for-bit identical for every thread count** (including
//!   the serial `threads <= 1` path) as long as the closure is pure.
//! * [`assist_flat_map`] / [`assist_reduce`] — work-assisting iteration:
//!   no pre-split partition at all, just one shared atomic claim index
//!   that every participant (the caller plus late-joining helpers) bumps
//!   to take the next block. Built for short, repeated, irregular loops
//!   inside a single solve — the partial-pricing window and the
//!   separation triangle — with the same ascending-block-order merge and
//!   the same bit-identity contract (DESIGN.md §17).
//!
//! That merge-order guarantee is the contract the EBF separation oracle
//! relies on: the violated-cut set a lazy solve adds each round — and
//! therefore the simplex pivot sequence — must not depend on scheduling.
//!
//! # Example
//!
//! ```
//! let squares = lubt_par::parallel_map(4, 100, 8, |i| i * i);
//! assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
//! // Same output on the exact sequential path.
//! assert_eq!(squares, lubt_par::parallel_map(1, 100, 8, |i| i * i));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assist;
mod chunks;
mod pool;

pub use assist::{assist_flat_map, assist_flat_map_traced, assist_reduce, assist_reduce_traced};
pub use chunks::{parallel_flat_map, parallel_flat_map_traced, parallel_map, parallel_map_traced};
pub use pool::Pool;

/// Number of hardware threads available to this process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "one worker per
/// available core", any other value is taken literally. `1` selects the
/// exact sequential path everywhere in the workspace.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
