//! Work-assisting iteration: one shared atomic claim index, joinable
//! mid-flight (DESIGN.md §17).
//!
//! Where the §9 chunk engine pre-splits the index range into per-worker
//! deques before any work starts, the assist engine keeps a single
//! [`AtomicUsize`] cursor over the block sequence. Every participant —
//! the caller plus however many helpers join — runs the same claim loop:
//! `fetch_add(1)` to take the next block, run it, repeat until the cursor
//! passes the end. A helper that shows up late simply starts claiming
//! from wherever the cursor currently is; there is no partition to
//! rebalance and no deque to steal from, which is what makes the scheme
//! fit short, repeated, irregular loops (partial pricing rounds, the
//! separation triangle) where up-front chunking either over-splits small
//! rounds or starves late joiners.
//!
//! Determinism contract (same as [`crate::parallel_flat_map`]): each
//! block's output is tagged with its block id, and after the scoped join
//! the blocks are reduced **in ascending block order**. `threads <= 1`
//! runs the identical per-block evaluation inline, so the result is
//! bit-identical for every thread count as long as the caller's fold is
//! associative over adjacent index ranges (concatenation and the
//! lowest-index-wins argmax both are).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use lubt_obs::{NoopRecorder, Recorder};

/// What one participant did inside the claim loop, reported after the
/// scoped join so the recorder sees no hot-loop trait calls.
#[derive(Debug, Clone, Copy, Default)]
struct AssistStats {
    claims: u64,
}

/// One participant's claim loop over `num_blocks` blocks of `grain`
/// indices: `fetch_add` the shared cursor, evaluate the claimed block,
/// repeat until the cursor passes the end. Returns `(block_id, value)`
/// pairs in claim order plus the participant's claim tally.
fn assist_claim_loop<T, B>(
    cursor: &AtomicUsize,
    num_blocks: usize,
    grain: usize,
    n: usize,
    block: &B,
) -> (Vec<(usize, T)>, AssistStats)
where
    T: Send,
    B: Fn(Range<usize>) -> T + Sync,
{
    let mut out = Vec::new();
    let mut stats = AssistStats::default();
    loop {
        let id = cursor.fetch_add(1, Ordering::Relaxed);
        if id >= num_blocks {
            return (out, stats);
        }
        stats.claims += 1;
        let range = id * grain..((id + 1) * grain).min(n);
        out.push((id, block(range)));
    }
}

/// Runs `block` over `0..n` in blocks of `grain` indices claimed from a
/// shared atomic cursor, then folds the per-block values **in ascending
/// block order** with `fold`.
///
/// Returns `None` when `n == 0` (no block ever runs), otherwise the fold
/// of every block value. `threads` counts total participants including
/// the caller; `0` means all cores and `<= 1` takes the exact sequential
/// path. The result is bit-identical for every thread count provided
/// `fold` is associative over adjacent index ranges — block boundaries
/// are a function of `grain` alone, never of the thread count.
///
/// # Example
///
/// ```
/// // Lowest-index-wins argmax, merged deterministically.
/// let best = lubt_par::assist_reduce(
///     4,
///     100,
///     8,
///     |range| range.map(|i| (i, (i % 7) as f64)).max_by(|a, b| {
///         a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0))
///     }),
///     |a, b| std::cmp::max_by(a, b, |x, y| {
///         match (x, y) {
///             (Some(a), Some(b)) => a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)),
///             (Some(_), None) => std::cmp::Ordering::Greater,
///             (None, Some(_)) => std::cmp::Ordering::Less,
///             (None, None) => std::cmp::Ordering::Equal,
///         }
///     }),
/// );
/// assert_eq!(best.flatten(), Some((6, 6.0)));
/// ```
pub fn assist_reduce<T, B, F>(
    threads: usize,
    n: usize,
    grain: usize,
    block: B,
    fold: F,
) -> Option<T>
where
    T: Send,
    B: Fn(Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    assist_reduce_traced(threads, n, grain, &NoopRecorder, block, fold)
}

/// [`assist_reduce`] with `par.assist.*` instrumentation: loop/job/claim
/// tallies, the participant high-water mark, and how many helpers
/// actually claimed at least one block (`par.assist.joins`).
///
/// Scheduling counters are inherently nondeterministic across runs and
/// thread counts; the *result* keeps the same determinism contract as
/// [`assist_reduce`].
pub fn assist_reduce_traced<T, B, F>(
    threads: usize,
    n: usize,
    grain: usize,
    rec: &dyn Recorder,
    block: B,
    mut fold: F,
) -> Option<T>
where
    T: Send,
    B: Fn(Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    let grain = grain.max(1);
    let num_blocks = n.div_ceil(grain);
    let threads = crate::resolve_threads(threads).min(num_blocks.max(1));
    if rec.enabled() {
        rec.incr("par.assist.loops", 1);
        rec.incr("par.assist.jobs", n as u64);
        rec.record_max("par.assist.workers", threads as u64);
    }
    if threads <= 1 {
        // Identical per-block evaluation and ascending fold: the serial
        // path is the reference the parallel merge reproduces.
        let mut acc: Option<T> = None;
        for id in 0..num_blocks {
            let value = block(id * grain..((id + 1) * grain).min(n));
            acc = Some(match acc {
                None => value,
                Some(prev) => fold(prev, value),
            });
        }
        return acc;
    }

    let cursor = AtomicUsize::new(0);
    let mut helper_stats = vec![AssistStats::default(); threads - 1];
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        // Helpers join the same claim loop the caller runs below; a
        // helper that arrives after the cursor passed the end claims
        // nothing and leaves — the join protocol is the claim itself.
        let handles: Vec<_> = (0..threads - 1)
            .map(|_| {
                let cursor = &cursor;
                let block = &block;
                scope.spawn(move || assist_claim_loop(cursor, num_blocks, grain, n, block))
            })
            .collect();
        let (mut all, caller) = assist_claim_loop(&cursor, num_blocks, grain, n, &block);
        let mut stats = vec![caller];
        for (h, slot) in handles.into_iter().zip(helper_stats.iter_mut()) {
            match h.join() {
                Ok((part, s)) => {
                    *slot = s;
                    all.extend(part);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        stats.extend(helper_stats.iter().copied());
        if rec.enabled() {
            let joins = helper_stats.iter().filter(|s| s.claims > 0).count();
            rec.incr("par.assist.joins", joins as u64);
            for s in &stats {
                rec.incr("par.assist.claims", s.claims);
            }
        }
        all
    });

    // Canonical merge: ascending block id reproduces the serial fold.
    tagged.sort_by_key(|(id, _)| *id);
    let mut acc: Option<T> = None;
    for (_, value) in tagged {
        acc = Some(match acc {
            None => value,
            Some(prev) => fold(prev, value),
        });
    }
    acc
}

/// Runs `f(i, &mut buf)` for every `i in 0..n` under assisted claiming,
/// concatenating the per-block buffers in index order. Drop-in for
/// [`crate::parallel_flat_map`] where mid-flight joining matters more
/// than owner-local chunk runs.
pub fn assist_flat_map<T, F>(threads: usize, n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    assist_flat_map_traced(threads, n, grain, &NoopRecorder, f)
}

/// [`assist_flat_map`] with the same `par.assist.*` instrumentation as
/// [`assist_reduce_traced`].
pub fn assist_flat_map_traced<T, F>(
    threads: usize,
    n: usize,
    grain: usize,
    rec: &dyn Recorder,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    assist_reduce_traced(
        threads,
        n,
        grain,
        rec,
        |range| {
            let mut buf = Vec::new();
            for i in range {
                f(i, &mut buf);
            }
            buf
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    )
    .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_serial_for_every_thread_count() {
        // Sum of i^2 folded left-to-right: float addition is not
        // associative, so bit-equality here proves the ascending-block
        // merge really reproduces the serial fold per block boundary.
        let reference = |grain: usize| {
            assist_reduce(
                1,
                513,
                grain,
                |r| r.map(|i| (i as f64).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
        };
        for threads in [2, 3, 4, 8, 33] {
            for grain in [1, 2, 7, 64, 1000] {
                let par = assist_reduce(
                    threads,
                    513,
                    grain,
                    |r| r.map(|i| (i as f64).sqrt()).sum::<f64>(),
                    |a, b| a + b,
                );
                assert_eq!(
                    par.map(f64::to_bits),
                    reference(grain).map(f64::to_bits),
                    "threads={threads} grain={grain}"
                );
            }
        }
    }

    #[test]
    fn flat_map_matches_serial_order() {
        let rows = 40;
        let serial: Vec<(usize, usize)> = (0..rows)
            .flat_map(|i| (i + 1..rows).map(move |j| (i, j)))
            .collect();
        for threads in [1, 2, 4, 8] {
            let par = assist_flat_map(threads, rows, 3, |i, out| {
                for j in i + 1..rows {
                    out.push((i, j));
                }
            });
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(assist_reduce(4, 0, 8, |_| 1u32, |a, b| a + b), None);
        assert!(assist_flat_map(4, 0, 8, |i, out| out.push(i)).is_empty());
        assert_eq!(
            assist_flat_map(8, 1, 8, |i, out| out.push(i + 10)),
            vec![10]
        );
    }

    #[test]
    fn traced_loop_reports_claims_and_joins() {
        let rec = lubt_obs::TraceRecorder::new();
        let serial: Vec<usize> = (0..100).map(|i| i + 1).collect();
        let par = assist_flat_map_traced(4, 100, 4, &rec, |i, out| out.push(i + 1));
        assert_eq!(par, serial);
        let t = rec.snapshot();
        assert_eq!(t.counter("par.assist.jobs"), 100);
        assert_eq!(t.counter("par.assist.loops"), 1);
        // 100 jobs / grain 4 = 25 blocks, each claimed exactly once.
        assert_eq!(t.counter("par.assist.claims"), 25);
        assert_eq!(t.maximum("par.assist.workers"), 4);
        // Joins are scheduling-dependent but bounded by the helper count.
        assert!(t.counter("par.assist.joins") <= 3);
    }

    #[test]
    fn every_assist_key_is_determinism_exempt() {
        // Same exemption contract as the §9 engine: every key this
        // module emits must be quarantined by prefix or nondeterministic
        // claim counts would leak into exact cross-run comparisons.
        let rec = lubt_obs::TraceRecorder::new();
        let _ = assist_flat_map_traced(4, 100, 4, &rec, |i, out| out.push(i));
        let t = rec.snapshot();
        assert!(!t.counters.is_empty());
        for key in t.counters.keys().chain(t.maxima.keys()) {
            assert!(
                lubt_obs::is_determinism_exempt_key(key),
                "assist key {key:?} is not covered by the exemption contract"
            );
        }
    }

    #[test]
    fn participant_panic_propagates() {
        let err = std::panic::catch_unwind(|| {
            assist_flat_map(4, 64, 1, |i, out| {
                assert!(i != 17, "hit the poisoned index");
                out.push(i);
            })
        });
        assert!(err.is_err());
    }
}
