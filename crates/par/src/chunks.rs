//! Deterministic chunked data-parallel iteration (scoped, borrow-friendly).
//!
//! The index range `0..n` is cut into fixed chunks; every worker owns a
//! contiguous run of chunk ids in a deque and steals from the front of
//! other deques when its own runs dry (owner pops the back). Each chunk's
//! output goes into its own buffer tagged with the chunk id, and after the
//! scoped join the buffers are concatenated in ascending chunk order —
//! so the output sequence is exactly the serial `for i in 0..n` order, no
//! matter which worker ran which chunk or in what interleaving.

use std::collections::VecDeque;
use std::sync::Mutex;

use lubt_obs::{NoopRecorder, Recorder};

/// What one worker did, reported after the scoped join so the recorder
/// sees per-worker steal counts without any hot-loop trait calls.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    claims: u64,
    steals: u64,
}

/// One worker's claim loop: own deque from the back, steal from the front
/// of the others. Returns `(chunk_id, buffer)` pairs in claim order plus
/// the worker's claim/steal tally.
fn claim_loop<T, F>(
    worker: usize,
    deques: &[Mutex<VecDeque<usize>>],
    chunk: usize,
    n: usize,
    f: &F,
) -> (Vec<(usize, Vec<T>)>, WorkerStats)
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let k = deques.len();
    let mut out = Vec::new();
    let mut stats = WorkerStats::default();
    loop {
        let mut claimed = None;
        for offset in 0..k {
            let victim = (worker + offset) % k;
            let mut q = deques[victim].lock().expect("chunk deque poisoned");
            claimed = if offset == 0 {
                q.pop_back()
            } else {
                q.pop_front()
            };
            if claimed.is_some() {
                stats.claims += 1;
                if offset > 0 {
                    stats.steals += 1;
                }
                break;
            }
        }
        let Some(id) = claimed else {
            return (out, stats);
        };
        let mut buf = Vec::new();
        for i in id * chunk..((id + 1) * chunk).min(n) {
            f(i, &mut buf);
        }
        out.push((id, buf));
    }
}

/// Runs `f(i, &mut buf)` for every `i in 0..n`, appending any number of
/// outputs per index, across `threads` workers (`0` = all cores) with
/// chunks of `grain` indices as the stealing unit.
///
/// The concatenated output is in index order and **independent of the
/// thread count**: `threads = 1` takes the exact sequential path, and any
/// other count merges per-chunk buffers canonically.
///
/// # Example
///
/// ```
/// // Flat-map the upper triangle row by row.
/// let pairs = lubt_par::parallel_flat_map(4, 4, 1, |i, out| {
///     for j in i + 1..4 {
///         out.push((i, j));
///     }
/// });
/// assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
/// ```
pub fn parallel_flat_map<T, F>(threads: usize, n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    parallel_flat_map_traced(threads, n, grain, &NoopRecorder, f)
}

/// [`parallel_flat_map`] with `par.*` instrumentation: per-worker steal
/// counts (`par.worker<w>.steals`), aggregate claims/steals, and the
/// initial queue high-water mark go into `rec`.
///
/// Scheduling counters are inherently nondeterministic across runs and
/// thread counts; the *output* keeps the same determinism contract as
/// [`parallel_flat_map`].
pub fn parallel_flat_map_traced<T, F>(
    threads: usize,
    n: usize,
    grain: usize,
    rec: &dyn Recorder,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let chunk = grain.max(1);
    let num_chunks = n.div_ceil(chunk);
    let threads = crate::resolve_threads(threads).min(num_chunks.max(1));
    if rec.enabled() {
        rec.incr("par.jobs", n as u64);
        rec.incr("par.loops", 1);
        rec.record_max("par.workers", threads as u64);
    }
    if threads <= 1 {
        let mut out = Vec::new();
        for i in 0..n {
            f(i, &mut out);
        }
        return out;
    }

    // Contiguous runs of chunk ids per worker: worker w owns chunks
    // [w*per .. (w+1)*per), the remainder spread over the first workers.
    let per = num_chunks / threads;
    let extra = num_chunks % threads;
    let mut start = 0;
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let len = per + usize::from(w < extra);
            let run = (start..start + len).collect();
            start += len;
            Mutex::new(run)
        })
        .collect();
    if rec.enabled() {
        // The deepest initial deque is this loop's queue high-water mark:
        // chunks only ever leave the deques after this point.
        rec.record_max(
            "par.queue_high_water",
            (per + usize::from(extra > 0)) as u64,
        );
    }

    let mut worker_stats = vec![WorkerStats::default(); threads];
    let mut tagged: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let deques = &deques;
                let f = &f;
                scope.spawn(move || claim_loop(w, deques, chunk, n, f))
            })
            .collect();
        handles
            .into_iter()
            .zip(worker_stats.iter_mut())
            .flat_map(|(h, slot)| match h.join() {
                Ok((part, stats)) => {
                    *slot = stats;
                    part
                }
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    if rec.enabled() {
        for (w, stats) in worker_stats.iter().enumerate() {
            rec.incr(&format!("par.worker{w}.steals"), stats.steals);
            rec.incr("par.claims", stats.claims);
            rec.incr("par.steals", stats.steals);
        }
    }

    // Canonical merge: ascending chunk id reproduces serial order.
    tagged.sort_by_key(|(id, _)| *id);
    tagged.into_iter().flat_map(|(_, buf)| buf).collect()
}

/// Maps `f` over `0..n`, returning one output per index in index order.
/// Same determinism contract and parameters as [`parallel_flat_map`].
///
/// # Example
///
/// ```
/// let doubled = lubt_par::parallel_map(0, 5, 2, |i| 2 * i);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn parallel_map<T, F>(threads: usize, n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_flat_map(threads, n, grain, |i, out| out.push(f(i)))
}

/// [`parallel_map`] with the same `par.*` instrumentation as
/// [`parallel_flat_map_traced`].
pub fn parallel_map_traced<T, F>(
    threads: usize,
    n: usize,
    grain: usize,
    rec: &dyn Recorder,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_flat_map_traced(threads, n, grain, rec, |i, out| out.push(f(i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_every_thread_count() {
        let serial: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 33] {
            for grain in [1, 2, 7, 64, 1000] {
                let par = parallel_map(threads, 257, grain, |i| i * 3 + 1);
                assert_eq!(par, serial, "threads={threads} grain={grain}");
            }
        }
    }

    #[test]
    fn flat_map_preserves_ragged_row_order() {
        let rows = 40;
        let serial: Vec<(usize, usize)> = (0..rows)
            .flat_map(|i| (i + 1..rows).map(move |j| (i, j)))
            .collect();
        let par = parallel_flat_map(4, rows, 3, |i, out| {
            for j in i + 1..rows {
                out.push((i, j));
            }
        });
        assert_eq!(par, serial);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(parallel_map(4, 0, 8, |i| i).is_empty());
        assert_eq!(parallel_map(8, 1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn traced_loop_matches_untraced_and_reports_claims() {
        let rec = lubt_obs::TraceRecorder::new();
        let serial: Vec<usize> = (0..100).map(|i| i + 1).collect();
        let par = parallel_map_traced(4, 100, 4, &rec, |i| i + 1);
        assert_eq!(par, serial);
        let t = rec.snapshot();
        assert_eq!(t.counter("par.jobs"), 100);
        // 100 jobs / grain 4 = 25 chunks, each claimed exactly once.
        assert_eq!(t.counter("par.claims"), 25);
        assert_eq!(t.maximum("par.workers"), 4);
        assert!(t.maximum("par.queue_high_water") >= 25 / 4);
        // Steals are scheduling-dependent; the aggregate must equal the
        // per-worker sum.
        let per_worker: u64 = (0..4)
            .map(|w| t.counter(&format!("par.worker{w}.steals")))
            .sum();
        assert_eq!(t.counter("par.steals"), per_worker);
    }

    #[test]
    fn every_scheduling_key_is_determinism_exempt() {
        // The aggregation layer (lubt_obs::AggregateTrace) quarantines
        // scheduling counters by key prefix; every key this crate emits
        // must fall under one of the exempt prefixes or nondeterministic
        // steal counts would leak into exact cross-run comparisons.
        let rec = lubt_obs::TraceRecorder::new();
        let _ = parallel_map_traced(4, 100, 4, &rec, |i| i);
        let t = rec.snapshot();
        assert!(!t.counters.is_empty());
        for key in t.counters.keys().chain(t.maxima.keys()) {
            assert!(
                lubt_obs::is_determinism_exempt_key(key),
                "scheduling key {key:?} is not covered by the exemption contract"
            );
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let err = std::panic::catch_unwind(|| {
            parallel_map(4, 64, 1, |i| {
                assert!(i != 17, "hit the poisoned index");
                i
            })
        });
        assert!(err.is_err());
    }
}
