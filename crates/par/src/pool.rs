//! A persistent work-stealing thread pool for `'static` jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lubt_obs::Recorder;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Everything the workers share. Jobs live in per-worker deques; the
/// owner pops from the back (LIFO, cache-warm), thieves pop from the
/// front (FIFO, oldest work first).
struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet claimed by any worker.
    queued: AtomicUsize,
    /// Jobs pushed but not yet finished running.
    pending: AtomicUsize,
    /// Workers currently executing a job (busy, not merely queued-for).
    busy: AtomicUsize,
    /// `true` once the pool is shutting down. Guards [`Shared::work_cv`].
    shutdown: Mutex<bool>,
    work_cv: Condvar,
    /// Guards [`Shared::idle_cv`]; signalled whenever `pending` hits zero.
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// First panic message captured from a job, resurfaced by
    /// [`Pool::wait`].
    panicked: Mutex<Option<String>>,
    /// Sink for `pool.*` scheduling counters (no-op by default).
    recorder: Arc<dyn Recorder>,
}

impl Shared {
    /// Claims one job: the worker's own deque from the back, then every
    /// other deque from the front.
    fn find_job(&self, worker: usize) -> Option<Job> {
        let k = self.queues.len();
        for offset in 0..k {
            let victim = (worker + offset) % k;
            let mut q = self.queues[victim].lock().expect("queue poisoned");
            let job = if offset == 0 {
                q.pop_back()
            } else {
                q.pop_front()
            };
            if let Some(job) = job {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                if self.recorder.enabled() {
                    self.recorder.incr("pool.claims", 1);
                    if offset > 0 {
                        self.recorder.incr("pool.steals", 1);
                        self.recorder
                            .incr(&format!("pool.worker{worker}.steals"), 1);
                    }
                }
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, job: Job) {
        self.busy.fetch_add(1, Ordering::AcqRel);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked with a non-string payload".to_string());
            let mut slot = self.panicked.lock().expect("panic slot poisoned");
            slot.get_or_insert(msg);
        }
        self.busy.fetch_sub(1, Ordering::AcqRel);
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.idle.lock().expect("idle lock poisoned");
            self.idle_cv.notify_all();
        }
    }

    fn worker_loop(&self, id: usize) {
        loop {
            if let Some(job) = self.find_job(id) {
                self.run_job(job);
                continue;
            }
            let guard = self.shutdown.lock().expect("shutdown lock poisoned");
            if *guard && self.queued.load(Ordering::Acquire) == 0 {
                return;
            }
            if self.queued.load(Ordering::Acquire) == 0 {
                // The timeout is a belt-and-braces guard against a missed
                // wakeup; spurious wakeups just rescan the deques.
                let _ = self
                    .work_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("shutdown lock poisoned");
            }
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Workers are spawned at construction and parked on a condvar when idle,
/// so repeated [`Pool::spawn`] / [`Pool::wait`] cycles reuse the same OS
/// threads — the "repeated spawn/join under contention" pattern the stress
/// tests exercise. Dropping the pool drains every queued job, then joins
/// the workers.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// let pool = lubt_par::Pool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.wait();
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
}

impl Pool {
    /// Spawns a pool with `threads` workers (`0` means one per available
    /// core).
    pub fn new(threads: usize) -> Pool {
        Self::with_recorder(threads, lubt_obs::noop())
    }

    /// Like [`Pool::new`], but scheduling counters (`pool.claims`,
    /// aggregate and per-worker `pool.steals`, `pool.queue_high_water`)
    /// go into `recorder`.
    pub fn with_recorder(threads: usize, recorder: Arc<dyn Recorder>) -> Pool {
        let threads = crate::resolve_threads(threads);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            shutdown: Mutex::new(false),
            work_cv: Condvar::new(),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            panicked: Mutex::new(None),
            recorder,
        });
        let workers = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lubt-par-{id}"))
                    .spawn(move || shared.worker_loop(id))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job on the next worker's deque (round robin; idle
    /// workers steal it if the target is busy).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let target = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        let queued = self.shared.queued.fetch_add(1, Ordering::Release) + 1;
        if self.shared.recorder.enabled() {
            self.shared.recorder.incr("pool.spawned", 1);
            self.shared
                .recorder
                .record_max("pool.queue_high_water", queued as u64);
        }
        self.shared.queues[target]
            .lock()
            .expect("queue poisoned")
            .push_back(Box::new(job));
        let _guard = self.shared.shutdown.lock().expect("shutdown lock poisoned");
        self.shared.work_cv.notify_one();
    }

    /// Workers with nothing running and nothing queued for them — the
    /// capacity [`Pool::assist_loop`] can lend to an in-progress solve
    /// without oversubscribing the machine.
    pub fn idle_workers(&self) -> usize {
        let occupied =
            self.shared.busy.load(Ordering::Acquire) + self.shared.queued.load(Ordering::Acquire);
        self.threads().saturating_sub(occupied)
    }

    /// Runs `f(i, &mut buf)` over `0..n` under assisted claiming
    /// ([`crate::assist_flat_map`]), sized to the caller plus every
    /// worker that is idle *right now* — a pool busy with batch work
    /// lends nothing, a drained pool lends everything.
    ///
    /// The helpers are scoped threads (pool jobs must be `'static`, a
    /// borrowed solve loop is not), so "joining" happens at the claim
    /// index: the pool donates capacity, and the output is bit-identical
    /// whatever that capacity happens to be.
    pub fn assist_loop<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) + Sync,
    {
        let width = 1 + self.idle_workers();
        if self.shared.recorder.enabled() {
            rec_donated(&*self.shared.recorder, width - 1);
        }
        crate::assist_flat_map_traced(width, n, grain, &*self.shared.recorder, f)
    }

    /// [`Pool::assist_loop`] for reductions: runs `block` over claimed
    /// index ranges and folds the results in ascending block order
    /// ([`crate::assist_reduce`]), sized like [`Pool::assist_loop`].
    pub fn assist_reduce<T, B, F>(&self, n: usize, grain: usize, block: B, fold: F) -> Option<T>
    where
        T: Send,
        B: Fn(std::ops::Range<usize>) -> T + Sync,
        F: FnMut(T, T) -> T,
    {
        let width = 1 + self.idle_workers();
        if self.shared.recorder.enabled() {
            rec_donated(&*self.shared.recorder, width - 1);
        }
        crate::assist_reduce_traced(width, n, grain, &*self.shared.recorder, block, fold)
    }

    /// Blocks until every spawned job has finished (the "join" half of
    /// spawn/join).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic captured from a job since the last call.
    pub fn wait(&self) {
        let mut guard = self.shared.idle.lock().expect("idle lock poisoned");
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            guard = self
                .shared
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle lock poisoned")
                .0;
        }
        drop(guard);
        let msg = self
            .shared
            .panicked
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(msg) = msg {
            panic!("lubt-par pool job panicked: {msg}");
        }
    }
}

/// Records how many idle workers a pool lent to an assisted loop.
fn rec_donated(rec: &dyn Recorder, donated: usize) {
    rec.incr("pool.assist.donated", donated as u64);
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.shutdown.lock().expect("shutdown lock poisoned");
            *guard = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.workers.len())
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_once() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn wait_resurfaces_job_panics() {
        let pool = Pool::new(2);
        pool.spawn(|| panic!("boom"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.wait()))
            .expect_err("wait must re-raise the job panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
        // The pool stays usable after a panic was drained.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.spawn(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recorder_sees_spawns_claims_and_high_water() {
        let rec = Arc::new(lubt_obs::TraceRecorder::new());
        let pool = Pool::with_recorder(2, rec.clone());
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 16);
        let t = rec.snapshot();
        assert_eq!(t.counter("pool.spawned"), 16);
        assert_eq!(t.counter("pool.claims"), 16);
        assert!(t.maximum("pool.queue_high_water") >= 1);
        let per_worker: u64 = (0..2)
            .map(|w| t.counter(&format!("pool.worker{w}.steals")))
            .sum();
        assert_eq!(t.counter("pool.steals"), per_worker);
    }

    #[test]
    fn assist_loop_matches_serial_and_reports_donation() {
        let rec = Arc::new(lubt_obs::TraceRecorder::new());
        let pool = Pool::with_recorder(4, rec.clone());
        pool.wait();
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        let par = pool.assist_loop(100, 4, |i, out| out.push(i * i));
        assert_eq!(par, serial);
        let folded = pool.assist_reduce(100, 4, |r| r.map(|i| i * i).sum::<usize>(), |a, b| a + b);
        assert_eq!(folded, Some(serial.iter().sum()));
        let t = rec.snapshot();
        // A drained pool lends every worker; both calls record it.
        assert!(t.counter("pool.assist.donated") >= 1);
        assert_eq!(t.counter("par.assist.loops"), 2);
    }

    #[test]
    fn idle_workers_is_bounded_by_the_pool_size() {
        let pool = Pool::new(3);
        pool.wait();
        assert!(pool.idle_workers() <= 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(pool.idle_workers() <= 3);
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
