//! Loom-style stress tests: repeated spawn/join cycles under contention,
//! cross-thread submission, and scheduling-independence of the chunked
//! parallel loops. No loom in the offline tree, so these hammer the real
//! primitives with enough iterations and thread counts to shake out
//! ordering bugs; CI runs the suite both single-threaded
//! (`RUST_TEST_THREADS=1`) and with default parallelism.

use lubt_par::{parallel_flat_map, parallel_map, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn repeated_spawn_join_cycles_reuse_the_pool() {
    let pool = Pool::new(4);
    let counter = Arc::new(AtomicUsize::new(0));
    for round in 0..200 {
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 16);
    }
}

#[test]
fn contended_submission_from_many_threads() {
    let pool = Arc::new(Pool::new(4));
    let counter = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..250 {
                    let counter = Arc::clone(&counter);
                    pool.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    pool.wait();
    assert_eq!(counter.load(Ordering::Relaxed), 8 * 250);
}

#[test]
fn uneven_job_durations_all_complete() {
    // Mix ~instant jobs with busy ones so stealing actually happens.
    let pool = Pool::new(8);
    let total = Arc::new(AtomicUsize::new(0));
    for i in 0..300 {
        let total = Arc::clone(&total);
        pool.spawn(move || {
            let spin = if i % 10 == 0 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            std::hint::black_box(acc);
            total.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait();
    assert_eq!(total.load(Ordering::Relaxed), 300);
}

#[test]
fn many_short_lived_pools() {
    // Construction/teardown is itself a spawn/join cycle; hammer it.
    for threads in [1, 2, 4] {
        for _ in 0..30 {
            let pool = Pool::new(threads);
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            drop(pool); // drop drains and joins
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }
    }
}

#[test]
fn chunked_loops_are_schedule_independent() {
    // Uneven per-index workloads (triangle rows) across many repetitions:
    // the merged output must always equal the serial order.
    let rows = 96;
    let serial = parallel_flat_map(1, rows, 4, |i, out| {
        for j in i + 1..rows {
            out.push((i, j, i * j));
        }
    });
    for rep in 0..20 {
        for threads in [2, 4, 8] {
            let par = parallel_flat_map(threads, rows, 4, |i, out| {
                for j in i + 1..rows {
                    out.push((i, j, i * j));
                }
            });
            assert_eq!(par, serial, "rep={rep} threads={threads}");
        }
    }
}

#[test]
fn nested_parallel_maps_do_not_deadlock() {
    // Scoped loops spawn fresh threads, so nesting cannot starve a pool.
    let out = parallel_map(4, 16, 1, |i| parallel_map(2, 8, 1, move |j| i * 8 + j));
    let flat: Vec<usize> = out.into_iter().flatten().collect();
    assert_eq!(flat, (0..128).collect::<Vec<_>>());
}
