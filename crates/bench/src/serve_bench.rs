//! The `serve` bench group: sustained throughput and latency percentiles
//! of the `lubt serve` daemon over the pinned suite instances.
//!
//! The group boots real [`lubt_serve::Server`] instances on ephemeral
//! loopback ports and drives them over TCP exactly like an external
//! client, so the numbers include framing, parsing, queueing and cache
//! lookups — the daemon's actual request cost, not just the solver's.
//! Four passes are measured:
//!
//! * `cold`   — fresh server, every request is a full solve;
//! * `cached` — same server again, every request is an LRU cache hit;
//! * `warm`   — a second server with the result cache disabled, primed
//!   once, so every request replays a retained warm LP session;
//! * `burst`  — a third fresh server hit by one client per worker
//!   concurrently, measuring sustained mixed cold/cached throughput.
//!
//! Every pass's responses are byte-compared against the cold pass (per
//! request id) and the run refuses to report if they diverge — the bench
//! doubles as an end-to-end audit of the DESIGN.md §9/§15 contract that
//! serving mode never changes a single output byte. All numbers are wall
//! clock, so the whole group lands under `"determinism_exempt"` in the
//! benchmark document and `lubt report` only ever gates it on ratios.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lubt_data::Instance;
use lubt_obs::json::{json_escape, json_f64};
use lubt_obs::Histogram;
use lubt_serve::{ServeConfig, Server};

/// One measured pass over the request set.
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Requests answered.
    pub count: usize,
    /// Wall clock for the whole pass.
    pub wall_ns: u64,
    /// Per-request round-trip latency in nanoseconds.
    pub latency: Histogram,
}

impl PassStats {
    /// Requests per second over the pass wall clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.count as f64 * 1e9 / self.wall_ns as f64
    }
}

/// The complete `serve` bench group result. Everything here is wall
/// clock or machine-shaped, hence determinism-exempt.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Daemon worker threads (also the burst client count).
    pub workers: usize,
    /// Requests per sequential pass (one per pinned instance).
    pub requests_per_pass: usize,
    /// Passes in measurement order: `cold`, `cached`, `warm`, `burst`.
    pub passes: Vec<(&'static str, PassStats)>,
    /// Total group wall clock (server boots included).
    pub total_wall_ns: u64,
}

impl ServeBench {
    /// Serializes the group as the `"serve"` member of the benchmark
    /// document's `"determinism_exempt"` section.
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{indent}  \"workers\": {},\n", self.workers));
        s.push_str(&format!(
            "{indent}  \"requests_per_pass\": {},\n",
            self.requests_per_pass
        ));
        s.push_str(&format!(
            "{indent}  \"total_wall_ns\": {},\n",
            self.total_wall_ns
        ));
        s.push_str(&format!("{indent}  \"passes\": {{\n"));
        for (i, (name, p)) in self.passes.iter().enumerate() {
            s.push_str(&format!(
                "{indent}    \"{}\": {{\"count\": {}, \"wall_ns\": {}, \
                 \"throughput_rps\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"max_ns\": {}}}{}\n",
                json_escape(name),
                p.count,
                p.wall_ns,
                json_f64(p.throughput_rps()),
                p.latency.percentile(0.50).unwrap_or(0),
                p.latency.percentile(0.99).unwrap_or(0),
                p.latency.max().unwrap_or(0),
                if i + 1 < self.passes.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!("{indent}  }}\n{indent}}}"));
        s
    }
}

/// A blocking line-framed client on one TCP connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-pass",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// The `lubt-serve-v1` wire form of a pinned instance.
fn wire_instance(inst: &Instance) -> String {
    let sinks = inst
        .sinks
        .iter()
        .map(|p| format!("[{}, {}]", json_f64(p.x), json_f64(p.y)))
        .collect::<Vec<_>>()
        .join(", ");
    let source = inst.source.map_or("null".to_string(), |p| {
        format!("[{}, {}]", json_f64(p.x), json_f64(p.y))
    });
    format!(
        "{{\"name\": \"{}\", \"source\": {source}, \"sinks\": [{sinks}]}}",
        json_escape(&inst.name)
    )
}

/// One solve request per instance; the id is the instance name so the
/// byte-compare can match responses across passes and connections.
fn request_lines(instances: &[Instance], lower_frac: f64, upper_frac: f64) -> Vec<String> {
    instances
        .iter()
        .map(|inst| {
            format!(
                "{{\"op\": \"solve\", \"id\": \"{}\", \"lower\": {}, \"upper\": {}, \
                 \"instance\": {}}}",
                json_escape(&inst.name),
                json_f64(lower_frac),
                json_f64(upper_frac),
                wire_instance(inst)
            )
        })
        .collect()
}

fn boot(workers: usize, cache_entries: usize) -> Result<Server, String> {
    Server::start(ServeConfig {
        workers,
        cache_entries,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("serve bench: cannot boot daemon: {e}"))
}

/// Sends every line in order on one connection, timing each round trip.
fn timed_pass(client: &mut Client, lines: &[String]) -> io::Result<(PassStats, Vec<String>)> {
    let mut latency = Histogram::new();
    let mut responses = Vec::with_capacity(lines.len());
    let start = Instant::now();
    for line in lines {
        let t0 = Instant::now();
        let resp = client.roundtrip(line)?;
        latency.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        responses.push(resp);
    }
    let stats = PassStats {
        count: lines.len(),
        wall_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        latency,
    };
    Ok((stats, responses))
}

/// Every response must be a success frame and byte-identical to the cold
/// pass's answer for the same request.
fn check_pass(
    pass: &str,
    lines: &[String],
    responses: &[String],
    cold: &[String],
) -> Result<(), String> {
    for (i, resp) in responses.iter().enumerate() {
        if !resp.contains("\"status\":\"ok\"") {
            return Err(format!(
                "serve bench: {pass} pass request {} failed: {resp}",
                lines[i]
            ));
        }
        if resp != &cold[i] {
            return Err(format!(
                "serve bench: determinism violation — {pass} response differs from cold \
                 for request {}:\n  cold: {}\n  {pass}: {resp}",
                lines[i], cold[i]
            ));
        }
    }
    Ok(())
}

/// Runs the serve bench group over the pinned instances.
///
/// `workers` is the daemon worker count (already resolved, `>= 1`); the
/// delay window is radius-relative, matching the suite's pinned window.
///
/// # Errors
///
/// Fails on daemon boot/IO errors, on any non-`ok` response, and on any
/// byte divergence between the cold, cached, warm and burst passes.
pub fn run(
    instances: &[Instance],
    lower_frac: f64,
    upper_frac: f64,
    workers: usize,
) -> Result<ServeBench, String> {
    let workers = workers.max(1);
    let lines = request_lines(instances, lower_frac, upper_frac);
    let group_start = Instant::now();
    let io_err = |pass: &'static str| move |e: io::Error| format!("serve bench: {pass} pass: {e}");

    // Cold + cached share one server: the first pass fills the LRU result
    // cache, the second hits it on every request.
    let server = boot(workers, lines.len().max(1))?;
    let mut client = Client::connect(server.addr()).map_err(io_err("cold"))?;
    let (cold, cold_responses) = timed_pass(&mut client, &lines).map_err(io_err("cold"))?;
    check_pass("cold", &lines, &cold_responses, &cold_responses)?;
    let (cached, cached_responses) = timed_pass(&mut client, &lines).map_err(io_err("cached"))?;
    check_pass("cached", &lines, &cached_responses, &cold_responses)?;
    drop(client);
    server.shutdown();

    // Warm: result cache disabled, so the priming pass only stocks the
    // warm session pool and the timed pass replays retained LP bases.
    let server = boot(workers, 0)?;
    let mut client = Client::connect(server.addr()).map_err(io_err("warm"))?;
    let (_prime, prime_responses) = timed_pass(&mut client, &lines).map_err(io_err("warm"))?;
    check_pass("warm-prime", &lines, &prime_responses, &cold_responses)?;
    let (warm, warm_responses) = timed_pass(&mut client, &lines).map_err(io_err("warm"))?;
    check_pass("warm", &lines, &warm_responses, &cold_responses)?;
    drop(client);
    server.shutdown();

    // Burst: a fresh server, one concurrent client per worker, each
    // sending the full request set — sustained mixed cold/cached load.
    let server = boot(workers, lines.len().max(1))?;
    let addr = server.addr();
    let burst_start = Instant::now();
    let joined: Vec<io::Result<(PassStats, Vec<String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let lines = &lines;
                scope.spawn(move || {
                    let mut client = Client::connect(addr)?;
                    timed_pass(&mut client, lines)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client thread panicked"))
            .collect()
    });
    let burst_wall = u64::try_from(burst_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    server.shutdown();
    let mut burst_latency = Histogram::new();
    let mut burst_count = 0usize;
    for result in joined {
        let (stats, responses) = result.map_err(io_err("burst"))?;
        check_pass("burst", &lines, &responses, &cold_responses)?;
        burst_latency.merge(&stats.latency);
        burst_count += stats.count;
    }
    let burst = PassStats {
        count: burst_count,
        wall_ns: burst_wall,
        latency: burst_latency,
    };

    Ok(ServeBench {
        workers,
        requests_per_pass: lines.len(),
        passes: vec![
            ("cold", cold),
            ("cached", cached),
            ("warm", warm),
            ("burst", burst),
        ],
        total_wall_ns: u64::try_from(group_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_obs::json::validate;

    #[test]
    fn serve_group_measures_all_four_passes_and_serializes() {
        let instances = crate::suite::pinned_instances(&[5]);
        let bench = run(&instances, 0.9, 1.4, 2).unwrap();
        assert_eq!(bench.workers, 2);
        assert_eq!(bench.requests_per_pass, 2);
        let names: Vec<&str> = bench.passes.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["cold", "cached", "warm", "burst"]);
        for (name, pass) in &bench.passes {
            let expected = if *name == "burst" { 4 } else { 2 };
            assert_eq!(pass.count, expected, "{name}");
            assert_eq!(pass.latency.count(), expected as u64, "{name}");
            assert!(pass.wall_ns > 0, "{name}");
            assert!(pass.throughput_rps() > 0.0, "{name}");
        }
        let doc = format!("{{\"serve\": {}}}", bench.to_json(""));
        validate(&doc).unwrap_or_else(|e| panic!("invalid serve JSON: {e}\n{doc}"));
        assert!(doc.contains("\"p50_ns\""));
        assert!(doc.contains("\"p99_ns\""));
        assert!(doc.contains("\"throughput_rps\""));
    }

    #[test]
    fn wire_instances_round_trip_through_the_daemon_parser() {
        // The bench's own serializer must speak valid lubt-serve-v1: an
        // echo through the strict request parser proves it.
        let inst = crate::suite::pinned_instances(&[5]).remove(0);
        let line = request_lines(std::slice::from_ref(&inst), 0.9, 1.4).remove(0);
        let value = lubt_obs::json::parse(&line).unwrap();
        let req = lubt_serve::protocol::parse_request(&value).unwrap();
        assert_eq!(req.instances.len(), 1);
        assert_eq!(req.instances[0].name, inst.name);
        assert_eq!(req.instances[0].sinks, inst.sinks);
        assert_eq!(req.instances[0].source, inst.source);
    }
}
