//! Table 3: LUBT cost for assorted bound combinations — near-zero-skew
//! rows (`[0.99, 1]`...), the classic bounded-skew rows (`[0.5, 1]`), and
//! the global-routing rows with zero lower bound (`[0, 1]`, `[0, 1.5]`,
//! `[0, 2]`), which \[9\] cannot produce at all.

use crate::table::{num, render};
use lubt_baselines::bounded_skew_tree;
use lubt_core::{DelayBounds, EbfSolver, LubtError, LubtProblem};
use lubt_data::Instance;

/// The `[lower, upper]` windows of Table 3 (radius-normalized).
pub const PAPER_WINDOWS: [(f64, f64); 8] = [
    (0.99, 1.0),
    (0.98, 1.0),
    (0.95, 1.0),
    (0.90, 1.0),
    (0.50, 1.0),
    (0.0, 1.0),
    (0.0, 1.5),
    (0.0, 2.0),
];

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: String,
    /// Window lower bound (radius-normalized).
    pub lower: f64,
    /// Window upper bound (radius-normalized).
    pub upper: f64,
    /// LUBT cost.
    pub cost: f64,
}

/// Runs the Table 3 protocol on one instance: each window solved on a
/// topology generated for the matching skew budget (the paper, likewise,
/// fed \[9\]-generated topologies to the EBF).
///
/// # Errors
///
/// Propagates solver failures. Windows whose upper bound falls below the
/// radius (possible after aggressive subsampling) are skipped rather than
/// reported as failures.
pub fn run(instance: &Instance, windows: &[(f64, f64)]) -> Result<Vec<Table3Row>, LubtError> {
    let radius = instance.radius();
    let m = instance.sinks.len();
    let mut rows = Vec::new();
    for &(l, u) in windows {
        let skew_budget = (u - l) * radius;
        let bst = bounded_skew_tree(&instance.sinks, instance.source, skew_budget)?;
        let bounds = DelayBounds::uniform(m, l * radius, u * radius);
        let problem = LubtProblem::new(
            instance.sinks.clone(),
            instance.source,
            bst.topology.clone(),
            bounds,
        )?;
        match EbfSolver::new().solve(&problem) {
            Ok((lengths, _)) => rows.push(Table3Row {
                bench: instance.name.clone(),
                lower: l,
                upper: u,
                cost: lubt_delay::linear::tree_cost(&lengths),
            }),
            Err(LubtError::Infeasible | LubtError::Rejected(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(rows)
}

/// Renders rows in the paper's column layout.
pub fn to_text(rows: &[Table3Row]) -> String {
    let header = ["bench", "lower", "upper", "LUBT cost"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                num(r.lower, 2),
                num(r.upper, 2),
                num(r.cost, 1),
            ]
        })
        .collect();
    render(&header, &body)
}

/// Renders rows as CSV, for external plotting.
pub fn to_csv(rows: &[Table3Row]) -> String {
    let mut out = String::from("bench,lower,upper,cost\n");
    for r in rows {
        out.push_str(&format!("{},{},{},{}\n", r.bench, r.lower, r.upper, r.cost));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;

    #[test]
    fn tightening_lower_bound_raises_cost() {
        let inst = synthetic::prim2().subsample(12);
        let rows = run(&inst, &[(0.99, 1.0), (0.90, 1.0), (0.50, 1.0), (0.0, 2.0)]).unwrap();
        assert_eq!(rows.len(), 4);
        // Paper's trend: as the window tightens toward zero skew the cost
        // rises; the loosest window is the cheapest.
        assert!(rows[0].cost >= rows[2].cost - 1e-6);
        let loosest = rows.last().unwrap();
        for r in &rows {
            assert!(loosest.cost <= r.cost + 1e-6);
        }
    }

    #[test]
    fn global_routing_rows_have_zero_lower() {
        let inst = synthetic::r1().subsample(10);
        let rows = run(&inst, &[(0.0, 1.5)]).unwrap();
        assert_eq!(rows.len(), 1);
        let text = to_text(&rows);
        assert!(text.contains("0.00"));
    }
}
