//! Regenerates the paper's tables and figure.
//!
//! ```text
//! reproduce <table1|table2|table3|figure8|all> [sinks]
//! ```
//!
//! `sinks` (or env `LUBT_SINKS` / `LUBT_FULL=1`) controls instance
//! subsampling; the default keeps each run to seconds. Set `LUBT_CSV_DIR`
//! to also write machine-readable CSVs next to the printed tables.

use lubt_bench::{figure8, instances, table1, table2, table3, timing};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .get(1)
        .and_then(|s| s.parse::<usize>().ok())
        .map(Some)
        .unwrap_or_else(instances::scale_from_env);

    match what {
        "table1" => run_table1(scale),
        "table2" => run_table2(scale),
        "table3" => run_table3(scale),
        "figure8" => run_figure8(scale),
        "timing" => run_timing(),
        "all" => {
            run_table1(scale);
            run_table2(scale);
            run_table3(scale);
            run_figure8(scale);
            run_timing();
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected table1|table2|table3|figure8|timing|all"
            );
            std::process::exit(2);
        }
    }
}

fn write_csv(name: &str, csv: &str) {
    if let Ok(dir) = std::env::var("LUBT_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        match lubt_obs::fsio::write_atomic(&path, csv) {
            Ok(()) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn describe(scale: Option<usize>) -> String {
    match scale {
        Some(k) => format!("{k} sinks per instance (LUBT_FULL=1 for published sizes)"),
        None => "full published sink counts".to_string(),
    }
}

fn run_table1(scale: Option<usize>) {
    println!(
        "== Table 1: baseline [9]-style BST vs LUBT ({})",
        describe(scale)
    );
    println!("   (all bounds normalized to the radius)\n");
    let mut rows = Vec::new();
    for inst in instances::paper_benchmarks(scale) {
        match table1::run(&inst, &table1::PAPER_SKEW_BOUNDS) {
            Ok(mut r) => rows.append(&mut r),
            Err(e) => eprintln!("{}: {e}", inst.name),
        }
    }
    println!("{}", table1::to_text(&rows));
    write_csv("table1", &table1::to_csv(&rows));
}

fn run_table2(scale: Option<usize>) {
    println!(
        "== Table 2: same skew, shifted [l, u] windows ({})\n",
        describe(scale)
    );
    let mut rows = Vec::new();
    for name in ["prim1", "prim2"] {
        let inst = instances::by_name(name, scale).expect("known benchmark");
        for skew in [0.3, 0.5] {
            match table2::run(&inst, skew, &table2::paper_offsets(skew)) {
                Ok(mut r) => rows.append(&mut r),
                Err(e) => eprintln!("{name} skew {skew}: {e}"),
            }
        }
    }
    println!("{}", table2::to_text(&rows));
    println!("(* = window realized by the baseline construction)\n");
    write_csv("table2", &table2::to_csv(&rows));
}

fn run_table3(scale: Option<usize>) {
    println!(
        "== Table 3: assorted bound combinations ({})\n",
        describe(scale)
    );
    let mut rows = Vec::new();
    for inst in instances::paper_benchmarks(scale) {
        match table3::run(&inst, &table3::PAPER_WINDOWS) {
            Ok(mut r) => rows.append(&mut r),
            Err(e) => eprintln!("{}: {e}", inst.name),
        }
    }
    println!("{}", table3::to_text(&rows));
    write_csv("table3", &table3::to_csv(&rows));
}

fn run_timing() {
    println!("== Solver CPU scaling (the §8 LOQO-vs-simplex remark)\n");
    // The interior-point column stops at 32 sinks (dense Cholesky is
    // minutes beyond that); the incremental simplex scales much further.
    let inst = instances::by_name("prim2", None).expect("known benchmark");
    match timing::run(&inst, &[8, 16, 32, 64, 128, 256]) {
        Ok(rows) => println!("{}", timing::to_text(&rows)),
        Err(e) => eprintln!("timing: {e}"),
    }
}

fn run_figure8(scale: Option<usize>) {
    println!(
        "== Figure 8: cost vs [l, u] trade-off on prim2 ({})\n",
        describe(scale)
    );
    let inst = instances::by_name("prim2", scale).expect("known benchmark");
    match figure8::run(&inst, &figure8::DEFAULT_WIDTHS, &figure8::default_lowers()) {
        Ok(points) => {
            println!("{}", figure8::to_text(&points));
            write_csv("figure8", &figure8::to_csv(&points));
        }
        Err(e) => eprintln!("figure8: {e}"),
    }
}
