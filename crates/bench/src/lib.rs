//! Experiment harness regenerating every table and figure of the LUBT
//! paper's evaluation (§8), plus shared plumbing for the Criterion benches.
//!
//! Each experiment module mirrors one artifact:
//!
//! * [`table1`] — Table 1: baseline (\[9\]-style BST) vs. LUBT cost across
//!   skew bounds `{0, 0.01, 0.05, 0.1, 0.5, 1, 2, inf}` × the four
//!   benchmarks.
//! * [`table2`] — Table 2: same skew, shifted `[l, u]` windows.
//! * [`table3`] — Table 3: assorted bound combinations (global-routing
//!   rows included).
//! * [`figure8`] — Figure 8: the cost-vs-window trade-off curve on prim2.
//!
//! Everything is driven by the `reproduce` binary:
//!
//! ```text
//! cargo run --release -p lubt-bench --bin reproduce -- table1
//! cargo run --release -p lubt-bench --bin reproduce -- all
//! ```
//!
//! Instance sizing: the synthetic benchmark analogues carry the paper's
//! published sink counts (269–862). Solving the EBF at full size is minutes
//! of CPU; by default experiments subsample to
//! [`instances::DEFAULT_SINKS`] sinks (override with env `LUBT_SINKS=<n>`
//! or `LUBT_FULL=1`). Relative claims — who wins, monotone trends — are
//! scale-stable, which is what the reproduction checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure8;
pub mod instances;
pub mod report;
pub mod serve_bench;
pub mod suite;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod timing;
