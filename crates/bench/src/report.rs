//! `lubt report`: diff two `lubt-bench-v1` documents and decide whether
//! the current run regressed against the baseline.
//!
//! The comparison mirrors the document's determinism split. Everything
//! under `"deterministic"` — per-instance rows and the aggregate's
//! counters/maxima — is compared *exactly*: any increase in a work
//! counter (pivots, separation rounds, Steiner rows) or in tree cost is
//! a regression, any decrease an improvement worth refreshing the
//! baseline for. Wall-clock totals under `"determinism_exempt"` are
//! compared as ratios against a slack threshold, because clocks are
//! noisy where counters are not.

use std::collections::BTreeMap;

use lubt_obs::json::{self, json_escape, json_f64, Value};

/// How a single finding affects the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A deterministic metric got worse; fails the gate.
    Regression,
    /// A wall-clock total got worse past the threshold; fails the gate
    /// unless timings are ignored.
    TimingRegression,
    /// A metric got better; never fails, suggests a baseline refresh.
    Improvement,
    /// Structural or informational difference (added/removed keys).
    Note,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Regression => "regression",
            Severity::TimingRegression => "timing-regression",
            Severity::Improvement => "improvement",
            Severity::Note => "note",
        }
    }
}

/// One observed difference between baseline and current.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Verdict contribution.
    pub severity: Severity,
    /// What differs (e.g. `instance u10/simplex lp_iterations`).
    pub subject: String,
    /// Human-readable delta.
    pub detail: String,
}

/// Comparison options.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Relative slack for wall-clock comparisons: current is a timing
    /// regression when it exceeds `baseline * (1 + threshold)`.
    pub timing_threshold: f64,
    /// When `true`, timing regressions are reported but never fail.
    pub ignore_timings: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            timing_threshold: 0.25,
            ignore_timings: false,
        }
    }
}

/// The outcome of comparing two benchmark documents.
#[derive(Debug, Clone)]
pub struct Report {
    /// Labels of the two documents.
    pub baseline_label: String,
    /// Label of the current document.
    pub current_label: String,
    /// Every difference found, in comparison order.
    pub findings: Vec<Finding>,
    /// Deterministic metrics compared and found identical.
    pub unchanged: usize,
    /// Whether timing regressions count toward [`Report::failed`].
    pub gate_timings: bool,
}

impl Report {
    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Deterministic regressions found.
    pub fn regressions(&self) -> usize {
        self.count(Severity::Regression)
    }

    /// Wall-clock regressions found.
    pub fn timing_regressions(&self) -> usize {
        self.count(Severity::TimingRegression)
    }

    /// `true` when the gate should fail (nonzero exit).
    pub fn failed(&self) -> bool {
        self.regressions() > 0 || (self.gate_timings && self.timing_regressions() > 0)
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "bench report: baseline \"{}\" vs current \"{}\"\n",
            self.baseline_label, self.current_label
        );
        for f in &self.findings {
            s.push_str(&format!(
                "  {:<18} {}: {}\n",
                f.severity.label(),
                f.subject,
                f.detail
            ));
        }
        s.push_str(&format!(
            "  {} deterministic metric(s) unchanged\n",
            self.unchanged
        ));
        if self.count(Severity::Improvement) > 0 {
            s.push_str("  improvements present: consider refreshing the committed baseline\n");
        }
        s.push_str(&format!(
            "verdict: {} ({} regression(s), {} timing regression(s){})\n",
            if self.failed() { "REGRESSION" } else { "PASS" },
            self.regressions(),
            self.timing_regressions(),
            if self.gate_timings {
                ""
            } else {
                ", timings not gating"
            }
        ));
        s
    }

    /// Renders the report as one strict-JSON document
    /// (`lubt-report-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"lubt-report-v1\",\n");
        s.push_str(&format!(
            "  \"baseline\": \"{}\",\n  \"current\": \"{}\",\n",
            json_escape(&self.baseline_label),
            json_escape(&self.current_label)
        ));
        s.push_str(&format!(
            "  \"failed\": {},\n  \"regressions\": {},\n  \
             \"timing_regressions\": {},\n  \"unchanged\": {},\n  \
             \"gate_timings\": {},\n",
            self.failed(),
            self.regressions(),
            self.timing_regressions(),
            self.unchanged,
            self.gate_timings
        ));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"severity\": \"{}\", \"subject\": \"{}\", \"detail\": \"{}\"}}",
                f.severity.label(),
                json_escape(&f.subject),
                json_escape(&f.detail)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn str_at<'a>(doc: &'a Value, path: &[&str]) -> Result<&'a str, String> {
    doc.get_path(path)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string at {}", path.join(".")))
}

/// Flattens `<root>.aggregate.{counters,maxima}` into `counters.<key>` /
/// `maxima.<key>` entries, plus events and solve totals.
fn scalars_under(doc: &Value, root: &[&str]) -> Result<BTreeMap<String, u64>, String> {
    let path = |tail: &str| -> String { format!("{}.{tail}", root.join(".")) };
    let mut agg_path = root.to_vec();
    agg_path.push("aggregate");
    let agg = doc
        .get_path(&agg_path)
        .ok_or_else(|| format!("missing {}", path("aggregate")))?;
    let mut out = BTreeMap::new();
    for section in ["counters", "maxima"] {
        let Some(pairs) = agg.get(section).and_then(Value::as_object) else {
            return Err(format!("missing {}.{section}", path("aggregate")));
        };
        for (k, v) in pairs {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("non-integer value for {section}.{k}"))?;
            out.insert(format!("{section}.{k}"), n);
        }
    }
    for key in ["events", "events_dropped"] {
        if let Some(n) = agg.get(key).and_then(Value::as_u64) {
            out.insert(key.to_string(), n);
        }
    }
    let mut solves_path = root.to_vec();
    solves_path.push("solves");
    if let Some(n) = doc.get_path(&solves_path).and_then(Value::as_u64) {
        out.insert("solves".to_string(), n);
    }
    Ok(out)
}

fn deterministic_scalars(doc: &Value) -> Result<BTreeMap<String, u64>, String> {
    scalars_under(doc, &["deterministic"])
}

/// The `"deterministic".extended` scalars, when the document carries the
/// section (documents predating the revised backend do not).
fn extended_scalars(doc: &Value) -> Result<Option<BTreeMap<String, u64>>, String> {
    if doc.get_path(&["deterministic", "extended"]).is_none() {
        return Ok(None);
    }
    scalars_under(doc, &["deterministic", "extended"]).map(Some)
}

/// Exact comparison of two scalar maps under a subject prefix; shared by
/// the core and extended aggregates.
fn compare_scalars(
    report: &mut Report,
    prefix: &str,
    base: &BTreeMap<String, u64>,
    cur: &BTreeMap<String, u64>,
) {
    for (key, &bv) in base {
        match cur.get(key) {
            Some(&cv) if cv == bv => report.unchanged += 1,
            Some(&cv) => report.findings.push(Finding {
                severity: if cv > bv {
                    Severity::Regression
                } else {
                    Severity::Improvement
                },
                subject: format!("{prefix} {key}"),
                detail: format!("{bv} -> {cv} ({})", pct(bv as f64, cv as f64)),
            }),
            None => report.findings.push(Finding {
                severity: Severity::Regression,
                subject: format!("{prefix} {key}"),
                detail: "present in baseline, missing in current".to_string(),
            }),
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            report.findings.push(Finding {
                severity: Severity::Note,
                subject: format!("{prefix} {key}"),
                detail: "new in current (absent from baseline)".to_string(),
            });
        }
    }
}

/// Indexes instance rows by `name/backend`; values are the row's numeric
/// fields (`cost` carried as its exact `f64`).
type RowFields = BTreeMap<String, f64>;

fn instance_rows(doc: &Value) -> Result<BTreeMap<String, RowFields>, String> {
    let rows = doc
        .get_path(&["deterministic", "instances"])
        .and_then(Value::as_array)
        .ok_or("missing deterministic.instances")?;
    let mut out = BTreeMap::new();
    for row in rows {
        let name = str_at(row, &["name"])?;
        let backend = str_at(row, &["backend"])?;
        let mut fields = BTreeMap::new();
        for key in [
            "sinks",
            "cost",
            "lp_iterations",
            "separation_rounds",
            "steiner_rows",
            "total_pairs",
        ] {
            let v = row
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("row {name}/{backend}: missing {key}"))?;
            fields.insert(key.to_string(), v);
        }
        let truncated = match row.get("truncated") {
            Some(Value::Bool(b)) => *b,
            _ => return Err(format!("row {name}/{backend}: missing truncated")),
        };
        fields.insert("truncated".to_string(), f64::from(u8::from(truncated)));
        out.insert(format!("{name}/{backend}"), fields);
    }
    Ok(out)
}

fn wall_timings(doc: &Value) -> BTreeMap<String, u64> {
    doc.get_path(&["determinism_exempt", "suite_wall_ns"])
        .and_then(Value::as_object)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

fn pct(baseline: f64, current: f64) -> String {
    if baseline == 0.0 {
        "from zero".to_string()
    } else {
        format!("{:+.1}%", (current / baseline - 1.0) * 100.0)
    }
}

/// Compares two benchmark documents.
///
/// # Errors
///
/// Fails on malformed JSON, schema/suite mismatches, and structurally
/// incomparable documents (different instance sets are reported as
/// findings, not errors).
pub fn compare(baseline: &str, current: &str, opts: &ReportOptions) -> Result<Report, String> {
    let base = json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = json::parse(current).map_err(|e| format!("current: {e}"))?;
    for (doc, which) in [(&base, "baseline"), (&cur, "current")] {
        let schema = str_at(doc, &["schema"])?;
        if schema != crate::suite::BENCH_SCHEMA {
            return Err(format!(
                "{which}: unsupported schema \"{schema}\" (want \"{}\")",
                crate::suite::BENCH_SCHEMA
            ));
        }
    }
    let (base_suite, cur_suite) = (
        str_at(&base, &["suite", "name"])?,
        str_at(&cur, &["suite", "name"])?,
    );
    if base_suite != cur_suite {
        return Err(format!(
            "suite mismatch: baseline ran \"{base_suite}\", current ran \"{cur_suite}\" — \
             the runs are not comparable"
        ));
    }

    let mut report = Report {
        baseline_label: str_at(&base, &["label"])?.to_string(),
        current_label: str_at(&cur, &["label"])?.to_string(),
        findings: Vec::new(),
        unchanged: 0,
        gate_timings: !opts.ignore_timings,
    };

    // Per-instance rows: exact field-by-field comparison.
    let base_rows = instance_rows(&base)?;
    let cur_rows = instance_rows(&cur)?;
    for (key, bfields) in &base_rows {
        let Some(cfields) = cur_rows.get(key) else {
            report.findings.push(Finding {
                severity: Severity::Regression,
                subject: format!("instance {key}"),
                detail: "present in baseline, missing in current".to_string(),
            });
            continue;
        };
        for (field, &bv) in bfields {
            let cv = cfields.get(field).copied().unwrap_or(f64::NAN);
            if cv == bv {
                report.unchanged += 1;
            } else {
                report.findings.push(Finding {
                    severity: if cv > bv || cv.is_nan() {
                        Severity::Regression
                    } else {
                        Severity::Improvement
                    },
                    subject: format!("instance {key} {field}"),
                    detail: format!("{} -> {} ({})", json_f64(bv), json_f64(cv), pct(bv, cv)),
                });
            }
        }
    }
    for key in cur_rows.keys() {
        if !base_rows.contains_key(key) {
            report.findings.push(Finding {
                severity: Severity::Note,
                subject: format!("instance {key}"),
                detail: "new in current (absent from baseline)".to_string(),
            });
        }
    }

    // Aggregate deterministic scalars: exact comparison.
    let base_scalars = deterministic_scalars(&base)?;
    let cur_scalars = deterministic_scalars(&cur)?;
    compare_scalars(&mut report, "aggregate", &base_scalars, &cur_scalars);

    // Extended scope (revised backend, --full sizes): exact comparison
    // when both documents carry it; one-sided presence is structural.
    match (extended_scalars(&base)?, extended_scalars(&cur)?) {
        (Some(b), Some(c)) => compare_scalars(&mut report, "extended", &b, &c),
        (None, Some(_)) => report.findings.push(Finding {
            severity: Severity::Note,
            subject: "extended".to_string(),
            detail: "current carries an extended scope the baseline predates".to_string(),
        }),
        (Some(_), None) => report.findings.push(Finding {
            severity: Severity::Regression,
            subject: "extended".to_string(),
            detail: "present in baseline, missing in current".to_string(),
        }),
        (None, None) => {}
    }

    // Wall clock: ratio comparison with slack; only keys present in both
    // legs are comparable (thread counts may differ between machines).
    let base_wall = wall_timings(&base);
    let cur_wall = wall_timings(&cur);
    for (key, &bns) in &base_wall {
        let Some(&cns) = cur_wall.get(key) else {
            continue;
        };
        if bns == 0 {
            continue;
        }
        let ratio = cns as f64 / bns as f64;
        if ratio > 1.0 + opts.timing_threshold {
            report.findings.push(Finding {
                severity: Severity::TimingRegression,
                subject: format!("wall {key}"),
                detail: format!(
                    "{bns} ns -> {cns} ns ({}, threshold {:+.1}%)",
                    pct(bns as f64, cns as f64),
                    opts.timing_threshold * 100.0
                ),
            });
        } else if ratio < 1.0 / (1.0 + opts.timing_threshold) {
            report.findings.push(Finding {
                severity: Severity::Improvement,
                subject: format!("wall {key}"),
                detail: format!("{bns} ns -> {cns} ns ({})", pct(bns as f64, cns as f64)),
            });
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{self, SuiteConfig};
    use lubt_obs::json::validate;

    fn doc() -> String {
        suite::run(&SuiteConfig {
            label: "base".to_string(),
            threads: 1,
            sizes: vec![5],
            interior_cap: 4,
            full: false,
            audit: false,
            serve: false,
            profile: false,
            par_intra: false,
        })
        .unwrap()
        .to_json()
    }

    #[test]
    fn identical_documents_pass_with_zero_findings() {
        let d = doc();
        let report = compare(&d, &d, &ReportOptions::default()).unwrap();
        assert!(!report.failed());
        assert_eq!(report.regressions(), 0);
        assert!(report.unchanged > 0);
        assert!(report.to_text().contains("verdict: PASS"));
        validate(&report.to_json()).unwrap();
    }

    #[test]
    fn counter_increase_is_a_regression_and_decrease_an_improvement() {
        let d = doc();
        let base = json::parse(&d).unwrap();
        let pivots = base
            .get_path(&["deterministic", "aggregate", "counters"])
            .and_then(|c| c.as_object())
            .and_then(|pairs| pairs.iter().find(|(k, _)| k.contains("pivots")))
            .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
            .expect("suite records a pivot counter");
        let worse = d.replacen(
            &format!("\"{}\": {}", pivots.0, pivots.1),
            &format!("\"{}\": {}", pivots.0, pivots.1 + 1),
            1,
        );
        assert_ne!(worse, d, "perturbation must hit the document");
        let report = compare(&d, &worse, &ReportOptions::default()).unwrap();
        assert!(report.failed(), "{}", report.to_text());
        assert!(report.to_text().contains("verdict: REGRESSION"));

        // The mirror image: the perturbed file as baseline is an
        // improvement, which passes.
        let report = compare(&worse, &d, &ReportOptions::default()).unwrap();
        assert!(!report.failed());
        assert!(report
            .to_text()
            .contains("refreshing the committed baseline"));
    }

    #[test]
    fn timing_regressions_gate_only_when_asked() {
        let d = doc();
        let base = json::parse(&d).unwrap();
        let (key, ns) = base
            .get_path(&["determinism_exempt", "suite_wall_ns"])
            .and_then(|w| w.as_object())
            .and_then(|pairs| pairs.first())
            .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
            .expect("suite records wall clock");
        let slower = d.replacen(
            &format!("\"{key}\": {ns}"),
            &format!("\"{key}\": {}", ns * 10),
            1,
        );
        assert_ne!(slower, d);
        let gated = compare(&d, &slower, &ReportOptions::default()).unwrap();
        assert_eq!(gated.timing_regressions(), 1);
        assert!(gated.failed());
        let ungated = compare(
            &d,
            &slower,
            &ReportOptions {
                ignore_timings: true,
                ..ReportOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ungated.timing_regressions(), 1);
        assert!(!ungated.failed());
    }

    #[test]
    fn baseline_without_extended_scope_still_passes() {
        // A baseline recorded before the revised backend existed has no
        // "deterministic".extended member; a current run that carries one
        // must compare clean (structural note, no regression) — this is
        // the BENCH_seed.json gate after the kernel landed.
        let d = doc();
        let start = d.find(",\n    \"extended\"").expect("extended member");
        let end = d
            .find("\n  },\n  \"determinism_exempt\"")
            .expect("deterministic close");
        let old = format!("{}{}", &d[..start], &d[end..]);
        validate(&old).unwrap();
        let report = compare(&old, &d, &ReportOptions::default()).unwrap();
        assert!(!report.failed(), "{}", report.to_text());
        assert!(report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Note && f.subject == "extended"));
        // The reverse direction loses coverage and must fail.
        let report = compare(&d, &old, &ReportOptions::default()).unwrap();
        assert!(report.failed());
    }

    #[test]
    fn schema_and_suite_mismatches_are_errors() {
        let d = doc();
        assert!(compare(&d, "{}", &ReportOptions::default()).is_err());
        let other = d.replace("pinned-v1", "pinned-v2");
        let err = compare(&d, &other, &ReportOptions::default()).unwrap_err();
        assert!(err.contains("not comparable"), "{err}");
    }
}
