//! The pinned `lubt bench` suite: a fixed, seeded set of instances solved
//! under both LP backends, folded into an [`AggregateTrace`], and written
//! as a schema-versioned benchmark document.
//!
//! The suite is the unit of the performance trajectory: every run solves
//! the *same* instances (fixed generators, fixed seeds, fixed delay
//! windows), so two `BENCH_*.json` files from different commits are
//! directly comparable. The document keeps the DESIGN.md §9 split at the
//! top level — everything under `"deterministic"` must be byte-identical
//! across thread counts and machines, and `lubt report` compares it
//! exactly; machine metadata and wall-clock timings live under
//! `"determinism_exempt"` and only ever gate on ratios.
//!
//! Every run re-solves the suite at one worker *and* at the configured
//! thread count and refuses to emit a document if the deterministic
//! halves disagree, so a benchmark file is also a determinism audit.

use std::collections::BTreeMap;

use lubt_core::{BatchSolver, DelayBounds, EbfSolver, LubtProblem, LubtSolution, SolverBackend};
use lubt_data::{synthetic, Instance};
use lubt_obs::json::{json_escape, json_f64};
use lubt_obs::{AggregateTrace, PhaseTimer, TraceRecorder};
use lubt_topology::{nearest_neighbor_topology, SourceMode};

/// Schema tag of the benchmark document.
pub const BENCH_SCHEMA: &str = "lubt-bench-v1";

/// Name of the pinned instance set; bump when instances/seeds change so
/// `lubt report` can refuse cross-suite comparisons.
pub const SUITE_NAME: &str = "pinned-v1";

/// Die side for every generated instance.
const DIE: f64 = 1000.0;

/// Delay window as fractions of the instance radius: `[0.9 R, 1.4 R]`
/// exercises both the lower-bound (snaking) and upper-bound machinery.
const LOWER_FRAC: f64 = 0.9;
const UPPER_FRAC: f64 = 1.4;

/// Sink counts of the large `--full` instances, where the sparse kernel's
/// advantage over the dense tableau is actually measurable.
pub const FULL_SIZES: [usize; 2] = [256, 512];

/// Suite configuration (sizes, thread count, backend cap).
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Label recorded in the document (e.g. `seed`, `ci`, `local`).
    pub label: String,
    /// Worker count for the parallel leg of the determinism check
    /// (`0` = all cores). The single-threaded leg always runs.
    pub threads: usize,
    /// Sink counts; each size yields one uniform and one clustered
    /// instance.
    pub sizes: Vec<usize>,
    /// Largest sink count the dense interior-point backend runs at.
    pub interior_cap: usize,
    /// When `true`, also solves the [`FULL_SIZES`] instances (dense and
    /// revised simplex) so kernel speedups are measurable; off by default
    /// to keep the CI bench gate fast.
    pub full: bool,
    /// When `true`, runs the `audit_overhead` group: a serial re-solve of
    /// every entry with exact certificate auditing enabled
    /// ([`EbfSolver::with_audit`] plus the rational tree audit). The run
    /// fails unless the audited rows are byte-identical to the unaudited
    /// ones; audit wall clock lands under `time.suite.audit_overhead.*`
    /// in the determinism-exempt half, and the audited leg's aggregates
    /// are discarded so the published deterministic section is unchanged.
    pub audit: bool,
    /// When `true`, runs the `serve` group: boots real `lubt serve`
    /// daemons on loopback and drives the pinned instances over TCP
    /// through cold, cached, warm and concurrent-burst passes, recording
    /// throughput and latency percentiles. The group internally refuses
    /// to report unless every pass's responses are byte-identical, and
    /// its numbers (all wall clock) land under `determinism_exempt.serve`
    /// plus a `time.suite.serve.threads<n>` wall key.
    pub serve: bool,
    /// When `true`, runs the `profile_overhead` group: every entry
    /// re-solved serially twice, once through the span-profiling recorder
    /// and once untraced, so the wall cost of hierarchical profiling is
    /// measurable. Both legs' rows must be byte-identical to the
    /// unprofiled serial leg (profiling must never perturb results,
    /// DESIGN.md §16); the wall clocks land under
    /// `time.suite.profile_overhead.{traced,untraced}.threads1`.
    pub profile: bool,
    /// When `true`, runs the `par_intra` group: the pinned 512-sink
    /// uniform instance solved on the revised backend at 1/2/4/8
    /// intra-solve workers (assisted pricing + separation, DESIGN.md
    /// §17), producing the single-instance scaling curve under
    /// `time.suite.par_intra.threads<n>`. The group refuses to report
    /// unless the edge lengths, report, and span *shape* are
    /// byte-identical across all four thread counts; nothing from it
    /// enters the deterministic half.
    pub par_intra: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            label: "local".to_string(),
            threads: 0,
            sizes: vec![6, 10, 16],
            interior_cap: 12,
            full: false,
            audit: false,
            serve: false,
            profile: false,
            par_intra: false,
        }
    }
}

/// One solved (instance, backend) pair — a row of the benchmark table.
/// Every field is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceRow {
    /// Pinned instance name (e.g. `u10`, `c16`).
    pub name: String,
    /// Solver backend (`simplex` | `interior` | `revised` | `dp`).
    pub backend: &'static str,
    /// Sink count.
    pub sinks: usize,
    /// Optimal tree cost (sum of edge lengths).
    pub cost: f64,
    /// LP pivots / interior-point steps across all re-solves.
    pub lp_iterations: usize,
    /// Lazy separation rounds.
    pub separation_rounds: usize,
    /// Steiner rows materialized, out of `C(m, 2)`.
    pub steiner_rows: usize,
    /// Total available pair rows.
    pub total_pairs: usize,
    /// `true` when lazy separation fell back to the full row set.
    pub truncated: bool,
}

/// One completed suite run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Label from the config.
    pub label: String,
    /// Sink counts solved.
    pub sizes: Vec<usize>,
    /// Interior-point size cap used.
    pub interior_cap: usize,
    /// Per-(instance, backend) rows, in pinned order.
    pub rows: Vec<InstanceRow>,
    /// Fold of the **core** solves — the seed-era scope (dense simplex and
    /// capped interior point at the base sizes), kept separate so its
    /// deterministic half stays exactly comparable against baselines
    /// recorded before the revised backend and `--full` sizes existed.
    pub aggregate: AggregateTrace,
    /// Fold of the **extended** solves (revised backend, `--full`
    /// instances); compared exactly only between documents that both
    /// carry it.
    pub extended: AggregateTrace,
    /// Resolved worker count of the parallel leg.
    pub threads: usize,
    /// The `serve` bench group (daemon throughput + latency percentiles),
    /// present only when the config asked for it. Wall clock through and
    /// through, so it serializes under `determinism_exempt`.
    pub serve: Option<crate::serve_bench::ServeBench>,
    /// Wall-clock per backend and leg (`time.suite.<backend>.threads<n>`),
    /// determinism-exempt.
    pub suite_wall_ns: BTreeMap<String, u64>,
}

/// The pinned instances for `sizes`: one uniform scatter and one
/// 3-cluster blob per size, seeds derived from the size alone.
pub fn pinned_instances(sizes: &[usize]) -> Vec<Instance> {
    let mut out = Vec::new();
    for &m in sizes {
        out.push(synthetic::uniform(
            &format!("u{m}"),
            m,
            DIE,
            0xD1E0 + m as u64,
        ));
        out.push(synthetic::clustered(
            &format!("c{m}"),
            m,
            DIE,
            3,
            0xC1A0 + m as u64,
        ));
    }
    out
}

/// One planned solve: the problem plus its row metadata.
struct Entry {
    name: String,
    backend: SolverBackend,
    backend_label: &'static str,
    /// Batch/wall-clock group; also decides the aggregate fold (see
    /// [`GROUPS`]).
    group: &'static str,
    sinks: usize,
    problem: LubtProblem,
}

/// The batch groups in solve order: `(group name, backend, core)`. `core`
/// groups fold into the seed-comparable aggregate; the rest fold into
/// `extended`.
const GROUPS: [(&str, SolverBackend, bool); 6] = [
    ("simplex", SolverBackend::Simplex, true),
    ("interior", SolverBackend::InteriorPoint, true),
    ("revised", SolverBackend::Revised, false),
    ("dp", SolverBackend::Dp, false),
    ("simplex-full", SolverBackend::Simplex, false),
    ("revised-full", SolverBackend::Revised, false),
];

fn planned_problem(inst: &Instance) -> Result<LubtProblem, String> {
    let radius = inst.radius();
    let m = inst.sinks.len();
    let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
    LubtProblem::new(
        inst.sinks.clone(),
        inst.source,
        topo,
        DelayBounds::uniform(m, LOWER_FRAC * radius, UPPER_FRAC * radius),
    )
    .map_err(|e| format!("suite instance {}: {e}", inst.name))
}

fn plan(config: &SuiteConfig) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for inst in pinned_instances(&config.sizes) {
        let m = inst.sinks.len();
        let problem = planned_problem(&inst)?;
        let mut backends = vec![(SolverBackend::Simplex, "simplex", "simplex")];
        if m <= config.interior_cap {
            backends.push((SolverBackend::InteriorPoint, "interior", "interior"));
        }
        backends.push((SolverBackend::Revised, "revised", "revised"));
        // The exact oracle runs only at the base sizes: its C(m, 2)-row
        // rational core is the cross-check, not the large-instance path.
        backends.push((SolverBackend::Dp, "dp", "dp"));
        for (backend, backend_label, group) in backends {
            entries.push(Entry {
                name: inst.name.clone(),
                backend,
                backend_label,
                group,
                sinks: m,
                problem: problem.clone(),
            });
        }
    }
    if config.full {
        for inst in pinned_instances(&FULL_SIZES) {
            let m = inst.sinks.len();
            let problem = planned_problem(&inst)?;
            for (backend, backend_label, group) in [
                (SolverBackend::Simplex, "simplex", "simplex-full"),
                (SolverBackend::Revised, "revised", "revised-full"),
            ] {
                entries.push(Entry {
                    name: inst.name.clone(),
                    backend,
                    backend_label,
                    group,
                    sinks: m,
                    problem: problem.clone(),
                });
            }
        }
    }
    Ok(entries)
}

/// Solves every entry at `threads` workers, one [`BatchSolver`] batch per
/// backend, and returns the rows (in entry order) plus the merged
/// aggregate. Wall clock per backend goes into `wall` under
/// `time.suite.<backend>.threads<threads>` — or
/// `time.suite.audit_overhead.<backend>.threads<threads>` when `audit`
/// is on, which also enables exact LP certificate auditing in the solver
/// and the rational tree audit on every solution.
fn solve_entries(
    entries: &[Entry],
    threads: usize,
    audit: bool,
    wall: &mut BTreeMap<String, u64>,
) -> Result<(Vec<InstanceRow>, AggregateTrace, AggregateTrace), String> {
    let mut rows: Vec<Option<InstanceRow>> = vec![None; entries.len()];
    let mut aggregate = AggregateTrace::new();
    let mut extended = AggregateTrace::new();
    for (label, backend, core) in GROUPS {
        let indices: Vec<usize> = (0..entries.len())
            .filter(|&i| entries[i].group == label)
            .collect();
        if indices.is_empty() {
            continue;
        }
        debug_assert!(indices.iter().all(|&i| entries[i].backend == backend));
        let problems: Vec<LubtProblem> = indices
            .iter()
            .map(|&i| entries[i].problem.clone())
            .collect();
        let batch = BatchSolver::new()
            .with_threads(threads)
            .with_solver(EbfSolver::new().with_backend(backend).with_audit(audit));
        let rec = TraceRecorder::new();
        let key = if audit {
            format!("time.suite.audit_overhead.{label}.threads{threads}")
        } else {
            format!("time.suite.{label}.threads{threads}")
        };
        let (results, _traces, agg) = {
            let _t = PhaseTimer::new(&rec, &key);
            batch.solve_all_aggregated(&problems)
        };
        wall.insert(key.clone(), rec.snapshot().timing_ns(&key));
        if core {
            aggregate.merge(&agg);
        } else {
            extended.merge(&agg);
        }
        for (&i, result) in indices.iter().zip(results) {
            let entry = &entries[i];
            let solution = result
                .map_err(|e| format!("suite solve {}/{}: {e}", entry.name, entry.backend_label))?;
            if audit {
                let findings = solution.audit_tree();
                if !findings.is_empty() {
                    return Err(format!(
                        "suite audit {}/{}: exact tree audit rejected the embedding \
                         ({} finding(s))",
                        entry.name,
                        entry.backend_label,
                        findings.len()
                    ));
                }
            }
            rows[i] = Some(row_for(entry, &solution));
        }
    }
    let rows = rows
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .expect("every entry belongs to exactly one batch group");
    Ok((rows, aggregate, extended))
}

/// The benchmark row of one solved entry (all deterministic facts).
fn row_for(entry: &Entry, solution: &LubtSolution) -> InstanceRow {
    let report = solution.report();
    InstanceRow {
        name: entry.name.clone(),
        backend: entry.backend_label,
        sinks: entry.sinks,
        cost: solution.cost(),
        lp_iterations: report.lp_iterations,
        separation_rounds: report.separation_rounds,
        steiner_rows: report.steiner_rows,
        total_pairs: report.total_pairs,
        truncated: report.truncated,
    }
}

/// The `profile_overhead` group: every entry re-solved serially twice —
/// once through the span-profiling recorder
/// ([`BatchSolver::solve_all_traced`], which grows a span tree) and once
/// untraced — so the wall cost of hierarchical profiling is measurable.
/// Both legs' rows must be byte-identical to `serial_rows` (profiling
/// must never perturb results); only the two quarantined wall keys
/// survive into the document.
fn profile_overhead(
    entries: &[Entry],
    serial_rows: &[InstanceRow],
    wall: &mut BTreeMap<String, u64>,
) -> Result<(), String> {
    for leg in ["traced", "untraced"] {
        let mut rows: Vec<Option<InstanceRow>> = vec![None; entries.len()];
        let rec = TraceRecorder::new();
        let key = format!("time.suite.profile_overhead.{leg}.threads1");
        {
            let _t = PhaseTimer::new(&rec, &key);
            for (label, backend, _) in GROUPS {
                let indices: Vec<usize> = (0..entries.len())
                    .filter(|&i| entries[i].group == label)
                    .collect();
                if indices.is_empty() {
                    continue;
                }
                let problems: Vec<LubtProblem> = indices
                    .iter()
                    .map(|&i| entries[i].problem.clone())
                    .collect();
                let batch = BatchSolver::new()
                    .with_threads(1)
                    .with_solver(EbfSolver::new().with_backend(backend));
                let results = if leg == "traced" {
                    let (results, trace) = batch.solve_all_traced(&problems);
                    if trace.spans.is_empty() {
                        return Err(format!(
                            "profile_overhead: traced leg of {label} produced no spans"
                        ));
                    }
                    results
                } else {
                    batch.solve_all(&problems)
                };
                for (&i, result) in indices.iter().zip(results) {
                    let entry = &entries[i];
                    let solution = result.map_err(|e| {
                        format!(
                            "profile_overhead {}/{}: {e}",
                            entry.name, entry.backend_label
                        )
                    })?;
                    rows[i] = Some(row_for(entry, &solution));
                }
            }
        }
        wall.insert(key.clone(), rec.snapshot().timing_ns(&key));
        let rows = rows
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .expect("every entry belongs to exactly one batch group");
        if rows.as_slice() != serial_rows {
            return Err(format!(
                "profile_overhead: {leg} rows diverged from the unprofiled leg \
                 — profiling perturbed solver results"
            ));
        }
    }
    Ok(())
}

/// Sink count of the `par_intra` scaling instance (the pinned `u512`).
pub const PAR_INTRA_SINKS: usize = 512;

/// Thread counts of the `par_intra` scaling curve.
pub const PAR_INTRA_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The `par_intra` group: one pinned uniform instance of `m` sinks,
/// solved on the revised backend at each [`PAR_INTRA_THREADS`] count
/// with span profiling on. Wall clock per thread count goes into `wall`
/// under `time.suite.par_intra.threads<n>`; the call fails unless the
/// edge-length bits, the report, and the span shape are identical for
/// every thread count (the DESIGN.md §17 determinism wall).
pub fn par_intra_scaling(m: usize, wall: &mut BTreeMap<String, u64>) -> Result<(), String> {
    let inst = synthetic::uniform(&format!("u{m}"), m, DIE, 0xD1E0 + m as u64);
    let problem = planned_problem(&inst)?;
    let mut baseline: Option<(Vec<u64>, lubt_core::EbfReport, String)> = None;
    for threads in PAR_INTRA_THREADS {
        let solver = EbfSolver::new()
            .with_backend(SolverBackend::Revised)
            .with_threads(threads);
        let rec = TraceRecorder::new();
        let key = format!("time.suite.par_intra.threads{threads}");
        let (outcome, trace) = {
            let _t = PhaseTimer::new(&rec, &key);
            solver.solve_traced(&problem)
        };
        wall.insert(key.clone(), rec.snapshot().timing_ns(&key));
        let (lengths, report) =
            outcome.map_err(|e| format!("par_intra u{m} at {threads} threads: {e}"))?;
        let bits: Vec<u64> = lengths.iter().map(|v| v.to_bits()).collect();
        let shape = trace.spans.shape_text();
        match &baseline {
            None => baseline = Some((bits, report, shape)),
            Some((b_bits, b_report, b_shape)) => {
                if *b_bits != bits || *b_report != report {
                    return Err(format!(
                        "par_intra determinism violation: u{m} solve differs \
                         between 1 and {threads} intra-solve workers"
                    ));
                }
                if *b_shape != shape {
                    return Err(format!(
                        "par_intra determinism violation: u{m} span shape differs \
                         between 1 and {threads} intra-solve workers"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Runs the pinned suite: serial leg, parallel leg, determinism
/// cross-check, and the fold into one [`BenchRun`].
///
/// # Errors
///
/// Fails on solver errors and on any deterministic divergence between
/// the serial and parallel legs (which would indicate a §9 contract
/// violation — the run must not be published as a baseline).
pub fn run(config: &SuiteConfig) -> Result<BenchRun, String> {
    let entries = plan(config)?;
    let mut wall = BTreeMap::new();
    let (serial_rows, serial_agg, serial_ext) = solve_entries(&entries, 1, false, &mut wall)?;
    if config.audit {
        // The audit_overhead group: same entries, serial, with exact
        // certificate auditing switched on. Rows must match the unaudited
        // leg byte for byte; only the wall clock (already quarantined
        // under a `time.` key) survives into the document.
        let (audited_rows, _, _) = solve_entries(&entries, 1, true, &mut wall)?;
        if audited_rows != serial_rows {
            return Err("audit divergence: audited rows differ from unaudited rows".to_string());
        }
    }
    if config.profile {
        profile_overhead(&entries, &serial_rows, &mut wall)?;
    }
    if config.par_intra {
        par_intra_scaling(PAR_INTRA_SINKS, &mut wall)?;
    }
    let threads = lubt_par::resolve_threads(config.threads);
    let (rows, aggregate, extended) = if threads == 1 {
        (serial_rows, serial_agg, serial_ext)
    } else {
        let (par_rows, par_agg, par_ext) = solve_entries(&entries, threads, false, &mut wall)?;
        if par_rows != serial_rows {
            return Err(format!(
                "determinism violation: instance rows differ between 1 and {threads} workers"
            ));
        }
        if par_agg.deterministic_json("") != serial_agg.deterministic_json("")
            || par_ext.deterministic_json("") != serial_ext.deterministic_json("")
        {
            return Err(format!(
                "determinism violation: aggregate deterministic halves differ \
                 between 1 and {threads} workers"
            ));
        }
        // Keep the parallel leg's aggregates: the deterministic halves are
        // provably identical and the exempt halves show real scheduling.
        (par_rows, par_agg, par_ext)
    };
    let serve = if config.serve {
        let instances = pinned_instances(&config.sizes);
        let bench = crate::serve_bench::run(&instances, LOWER_FRAC, UPPER_FRAC, threads)?;
        wall.insert(
            format!("time.suite.serve.threads{threads}"),
            bench.total_wall_ns,
        );
        Some(bench)
    } else {
        None
    };
    Ok(BenchRun {
        label: config.label.clone(),
        sizes: config.sizes.clone(),
        interior_cap: config.interior_cap,
        rows,
        aggregate,
        extended,
        threads,
        serve,
        suite_wall_ns: wall,
    })
}

impl BenchRun {
    /// Serializes the run as one strict-JSON `lubt-bench-v1` document.
    ///
    /// Layout contract: the whole `"deterministic"` member — rows and
    /// aggregate — is byte-identical across thread counts; machine
    /// metadata, worker counts and wall-clock totals are confined to
    /// `"determinism_exempt"`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
        s.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&self.label)));
        s.push_str("  \"suite\": {\n");
        s.push_str(&format!("    \"name\": \"{SUITE_NAME}\",\n"));
        s.push_str(&format!(
            "    \"sizes\": [{}],\n",
            self.sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("    \"die\": {},\n", json_f64(DIE)));
        s.push_str(&format!(
            "    \"window\": {{\"lower_frac\": {}, \"upper_frac\": {}}},\n",
            json_f64(LOWER_FRAC),
            json_f64(UPPER_FRAC)
        ));
        s.push_str(&format!(
            "    \"interior_cap\": {}\n  }},\n",
            self.interior_cap
        ));

        s.push_str("  \"deterministic\": {\n    \"instances\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"name\": \"{}\", \"backend\": \"{}\", \"sinks\": {}, \
                 \"cost\": {}, \"lp_iterations\": {}, \"separation_rounds\": {}, \
                 \"steiner_rows\": {}, \"total_pairs\": {}, \"truncated\": {}}}{}\n",
                json_escape(&r.name),
                r.backend,
                r.sinks,
                json_f64(r.cost),
                r.lp_iterations,
                r.separation_rounds,
                r.steiner_rows,
                r.total_pairs,
                r.truncated,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("    ],\n");
        s.push_str(&format!("    \"solves\": {},\n", self.aggregate.solves));
        s.push_str("    \"aggregate\": ");
        s.push_str(&self.aggregate.deterministic_json("    "));
        // Extended scope (revised backend, --full sizes) is its own
        // member so the core aggregate above stays exactly comparable
        // against pre-revised baselines.
        s.push_str(",\n    \"extended\": {\n");
        s.push_str(&format!(
            "      \"solves\": {},\n      \"aggregate\": ",
            self.extended.solves
        ));
        s.push_str(&self.extended.deterministic_json("      "));
        s.push_str("\n    }\n  },\n");

        s.push_str("  \"determinism_exempt\": {\n");
        s.push_str(&format!(
            "    \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \
             \"available_parallelism\": {}, \"threads\": {}}},\n",
            json_escape(std::env::consts::OS),
            json_escape(std::env::consts::ARCH),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            self.threads
        ));
        s.push_str("    \"suite_wall_ns\": {");
        let mut first = true;
        for (k, v) in &self.suite_wall_ns {
            s.push_str(if first { "\n" } else { ",\n" });
            first = false;
            s.push_str(&format!("      \"{}\": {v}", json_escape(k)));
        }
        if !first {
            s.push_str("\n    ");
        }
        s.push_str("},\n");
        if let Some(serve) = &self.serve {
            s.push_str("    \"serve\": ");
            s.push_str(&serve.to_json("    "));
            s.push_str(",\n");
        }
        s.push_str("    \"aggregate\": ");
        s.push_str(&self.aggregate.exempt_json("    "));
        s.push_str(",\n    \"extended_aggregate\": ");
        s.push_str(&self.extended.exempt_json("    "));
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_obs::json::validate;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            label: "test".to_string(),
            threads: 2,
            sizes: vec![5, 8],
            interior_cap: 6,
            full: false,
            audit: false,
            serve: false,
            profile: false,
            par_intra: false,
        }
    }

    #[test]
    fn par_intra_scaling_checks_determinism_and_quarantines_wall_clock() {
        // The real group runs the pinned 512-sink instance; the unit test
        // exercises the same code path at a CI-friendly size.
        let mut wall = BTreeMap::new();
        par_intra_scaling(48, &mut wall).unwrap();
        for threads in PAR_INTRA_THREADS {
            let key = format!("time.suite.par_intra.threads{threads}");
            assert!(wall.contains_key(&key), "{key} missing");
        }
        // A run carrying the group gates clean against a baseline without
        // it: wall keys compare only when present in both documents.
        let plain = run(&tiny()).unwrap();
        let mut with_group = plain.clone();
        with_group.suite_wall_ns.extend(wall);
        let opts = crate::report::ReportOptions {
            ignore_timings: true,
            ..crate::report::ReportOptions::default()
        };
        let gate = crate::report::compare(&plain.to_json(), &with_group.to_json(), &opts).unwrap();
        assert!(!gate.failed(), "{}", gate.to_text());
    }

    #[test]
    fn pinned_instances_are_reproducible_and_named() {
        let a = pinned_instances(&[5, 8]);
        let b = pinned_instances(&[5, 8]);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].name, "u5");
        assert_eq!(a[1].name, "c5");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sinks, y.sinks, "{} regenerated differently", x.name);
        }
    }

    #[test]
    fn suite_runs_and_serializes_strict_json_with_split_sections() {
        let run = run(&tiny()).unwrap();
        // 2 sizes × 2 instances with simplex + revised + dp everywhere and
        // interior only at m = 5 ⇒ 12 + 2 rows; the 4 revised and 4 dp
        // solves fold into the extended aggregate, not the seed-comparable
        // core.
        assert_eq!(run.rows.len(), 14);
        assert_eq!(run.aggregate.solves, 6);
        assert_eq!(run.extended.solves, 8);
        assert_eq!(run.extended.counter("lp.solves"), 4);
        assert_eq!(run.extended.counter("dp.solves"), 4);
        assert_eq!(run.aggregate.counter("lp.solves"), 0);
        assert_eq!(run.aggregate.counter("dp.solves"), 0);
        assert_eq!(run.extended.counter("simplex.solves"), 0);
        assert!(run.rows.iter().all(|r| r.cost > 0.0));
        // The revised rows must agree with their dense twins exactly on
        // the LP-level facts (same pivot rules, same certificates).
        for r in run.rows.iter().filter(|r| r.backend == "revised") {
            let dense = run
                .rows
                .iter()
                .find(|d| d.backend == "simplex" && d.name == r.name)
                .expect("every revised row has a dense twin");
            assert!(
                (dense.cost - r.cost).abs() <= 1e-6 * (1.0 + dense.cost.abs()),
                "{}: dense {} vs revised {}",
                r.name,
                dense.cost,
                r.cost
            );
            assert_eq!(dense.separation_rounds, r.separation_rounds, "{}", r.name);
            assert_eq!(dense.steiner_rows, r.steiner_rows, "{}", r.name);
        }
        // The exact-oracle rows agree with the dense twins on cost; being
        // eager they materialize every pair row in a single round.
        for r in run.rows.iter().filter(|r| r.backend == "dp") {
            let dense = run
                .rows
                .iter()
                .find(|d| d.backend == "simplex" && d.name == r.name)
                .expect("every dp row has a dense twin");
            assert!(
                (dense.cost - r.cost).abs() <= 1e-6 * (1.0 + dense.cost.abs()),
                "{}: dense {} vs dp {}",
                r.name,
                dense.cost,
                r.cost
            );
            assert_eq!(r.separation_rounds, 1, "{}", r.name);
            assert_eq!(r.steiner_rows, r.total_pairs, "{}", r.name);
            assert!(!r.truncated, "{}", r.name);
        }
        let doc = run.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid bench JSON: {e}\n{doc}"));
        let det = doc.find("\"deterministic\"").unwrap();
        let exempt = doc.find("\"determinism_exempt\"").unwrap();
        assert!(det < exempt);
        // Wall clock, worker counts and machine facts never leak into the
        // comparable half.
        let det_half = &doc[det..exempt];
        assert!(!det_half.contains("time."));
        assert!(!det_half.contains("threads"));
        assert!(!det_half.contains("machine"));
        assert!(det_half.contains("\"extended\""));
        assert!(doc[exempt..].contains("suite_wall_ns"));
    }

    #[test]
    fn full_plan_adds_large_instances_without_touching_core() {
        let base = plan(&tiny()).unwrap();
        let full = plan(&SuiteConfig {
            full: true,
            ..tiny()
        })
        .unwrap();
        // The core prefix is unchanged; the full entries append after it.
        assert_eq!(full.len(), base.len() + 2 * FULL_SIZES.len() * 2);
        for (a, b) in base.iter().zip(&full) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.group, b.group);
        }
        let tail = &full[base.len()..];
        assert!(tail
            .iter()
            .all(|e| e.group == "simplex-full" || e.group == "revised-full"));
        assert!(tail.iter().any(|e| e.name == "u256"));
        assert!(tail.iter().any(|e| e.name == "c512"));
        assert!(GROUPS
            .iter()
            .filter(|(_, _, core)| !core)
            .all(|(g, _, _)| *g == "dp" || g.starts_with("revised") || g.ends_with("-full")));
    }

    #[test]
    fn audit_overhead_group_leaves_the_deterministic_section_untouched() {
        let plain = run(&tiny()).unwrap();
        let audited = run(&SuiteConfig {
            audit: true,
            ..tiny()
        })
        .unwrap();
        // Auditing every solve (which `run` itself cross-checks against
        // the unaudited rows) must not perturb the published document's
        // deterministic half at all.
        assert_eq!(plain.rows, audited.rows);
        assert_eq!(
            extract_deterministic(&plain.to_json()),
            extract_deterministic(&audited.to_json())
        );
        // The overhead shows up only as quarantined wall clock.
        assert!(audited
            .suite_wall_ns
            .keys()
            .any(|k| k.starts_with("time.suite.audit_overhead.")));
        assert!(!plain
            .suite_wall_ns
            .keys()
            .any(|k| k.starts_with("time.suite.audit_overhead.")));
        let doc = audited.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid bench JSON: {e}\n{doc}"));
        let det = extract_deterministic(&doc);
        assert!(!det.contains("audit_overhead"));
        assert!(doc.contains("time.suite.audit_overhead.simplex.threads1"));
    }

    #[test]
    fn profile_overhead_group_is_exempt_and_gates_against_plain_baselines() {
        let plain = run(&tiny()).unwrap();
        let profiled = run(&SuiteConfig {
            profile: true,
            ..tiny()
        })
        .unwrap();
        // Span profiling must not perturb the published deterministic
        // half at all (DESIGN.md §16).
        assert_eq!(plain.rows, profiled.rows);
        assert_eq!(
            extract_deterministic(&plain.to_json()),
            extract_deterministic(&profiled.to_json())
        );
        // Both legs' wall clocks land quarantined under `time.` keys.
        for leg in ["traced", "untraced"] {
            let key = format!("time.suite.profile_overhead.{leg}.threads1");
            assert!(profiled.suite_wall_ns.contains_key(&key), "{key} missing");
            assert!(
                !plain.suite_wall_ns.contains_key(&key),
                "{key} in plain run"
            );
        }
        let doc = profiled.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid bench JSON: {e}\n{doc}"));
        assert!(!extract_deterministic(&doc).contains("profile_overhead"));
        // The report gate tolerates wall keys present in only one side,
        // so a profiled run gates clean against a plain baseline.
        let opts = crate::report::ReportOptions {
            ignore_timings: true,
            ..crate::report::ReportOptions::default()
        };
        let gate = crate::report::compare(&plain.to_json(), &doc, &opts).unwrap();
        assert!(!gate.failed(), "{}", gate.to_text());
        let reverse = crate::report::compare(&doc, &plain.to_json(), &opts).unwrap();
        assert!(!reverse.failed(), "{}", reverse.to_text());
    }

    #[test]
    fn serve_group_is_exempt_and_the_report_gate_still_passes() {
        let plain = run(&tiny()).unwrap();
        let served = run(&SuiteConfig {
            serve: true,
            ..tiny()
        })
        .unwrap();
        // The daemon passes must not perturb the deterministic half at
        // all — serving mode changing a solve would be a §9 violation.
        assert_eq!(plain.rows, served.rows);
        assert_eq!(
            extract_deterministic(&plain.to_json()),
            extract_deterministic(&served.to_json())
        );
        let bench = served.serve.as_ref().expect("serve group requested");
        assert_eq!(bench.workers, served.threads);
        assert!(served
            .suite_wall_ns
            .keys()
            .any(|k| k.starts_with("time.suite.serve.threads")));
        let doc = served.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid bench JSON: {e}\n{doc}"));
        let exempt = doc.find("\"determinism_exempt\"").unwrap();
        assert!(doc[exempt..].contains("\"serve\""));
        assert!(doc[exempt..].contains("\"throughput_rps\""));
        // The seed gate compares deterministic scalars exactly and wall
        // keys only when present in both docs, so a serve-bearing run
        // gates clean against a serve-less baseline and vice versa.
        let opts = crate::report::ReportOptions {
            ignore_timings: true, // wall clock between two live runs is noise
            ..crate::report::ReportOptions::default()
        };
        let gate = crate::report::compare(&plain.to_json(), &doc, &opts).unwrap();
        assert!(!gate.failed(), "{}", gate.to_text());
        let reverse = crate::report::compare(&doc, &plain.to_json(), &opts).unwrap();
        assert!(!reverse.failed(), "{}", reverse.to_text());
    }

    #[test]
    fn deterministic_half_is_identical_across_runs() {
        let a = run(&tiny()).unwrap();
        let b = run(&tiny()).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(
            a.aggregate.deterministic_json(""),
            b.aggregate.deterministic_json("")
        );
        let det_a = extract_deterministic(&a.to_json());
        let det_b = extract_deterministic(&b.to_json());
        assert_eq!(det_a, det_b, "deterministic section must be byte-stable");
    }

    /// The substring between `"deterministic"` and `"determinism_exempt"`.
    fn extract_deterministic(doc: &str) -> String {
        let start = doc.find("\"deterministic\"").unwrap();
        let end = doc.find("\"determinism_exempt\"").unwrap();
        doc[start..end].to_string()
    }
}
