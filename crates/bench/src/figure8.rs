//! Figure 8: the trade-off curve between tree cost and the `[l, u]` delay
//! window on prim2.
//!
//! The series sweeps the window's position (lower bound `l`) for several
//! window widths `d` (`u = l + d`); the paper's curve shows cost falling
//! steeply as the window loosens away from zero skew and flattening toward
//! the unconstrained Steiner cost.

use crate::table::{num, render};
use lubt_baselines::bounded_skew_tree;
use lubt_core::{DelayBounds, EbfSolver, LubtError, LubtProblem};
use lubt_data::Instance;

/// One sample of the trade-off surface.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Window width `d = u - l` (radius-normalized).
    pub width: f64,
    /// Window lower bound (radius-normalized).
    pub lower: f64,
    /// LUBT cost at `[lower, lower + width]`.
    pub cost: f64,
}

/// Default window widths of the sweep.
pub const DEFAULT_WIDTHS: [f64; 4] = [0.05, 0.2, 0.5, 1.0];

/// Default lower-bound sweep positions.
pub fn default_lowers() -> Vec<f64> {
    (0..=6).map(|i| 0.2 * f64::from(i)).collect()
}

/// Computes the trade-off curve on one instance.
///
/// Infeasible windows (upper end below the radius) are skipped, matching
/// the feasible portion of the paper's curve.
///
/// # Errors
///
/// Propagates non-infeasibility solver failures.
pub fn run(
    instance: &Instance,
    widths: &[f64],
    lowers: &[f64],
) -> Result<Vec<CurvePoint>, LubtError> {
    let radius = instance.radius();
    let m = instance.sinks.len();
    let mut out = Vec::new();
    for &d in widths {
        let bst = bounded_skew_tree(&instance.sinks, instance.source, d * radius)?;
        for &l in lowers {
            let u = l + d;
            if u * radius < radius - 1e-9 {
                continue; // certainly infeasible: u below the radius
            }
            let bounds = DelayBounds::uniform(m, l * radius, u * radius);
            let problem = LubtProblem::new(
                instance.sinks.clone(),
                instance.source,
                bst.topology.clone(),
                bounds,
            )?;
            match EbfSolver::new().solve(&problem) {
                Ok((lengths, _)) => out.push(CurvePoint {
                    width: d,
                    lower: l,
                    cost: lubt_delay::linear::tree_cost(&lengths),
                }),
                Err(LubtError::Infeasible | LubtError::Rejected(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

/// Renders the curve as the series the figure plots (one row per sample).
pub fn to_text(points: &[CurvePoint]) -> String {
    let header = ["width d", "lower l", "upper u", "LUBT cost"];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                num(p.width, 2),
                num(p.lower, 2),
                num(p.lower + p.width, 2),
                num(p.cost, 1),
            ]
        })
        .collect();
    render(&header, &body)
}

/// Renders the curve as CSV, for external plotting.
pub fn to_csv(points: &[CurvePoint]) -> String {
    let mut out = String::from("width,lower,upper,cost\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{}\n",
            p.width,
            p.lower,
            p.lower + p.width,
            p.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;

    #[test]
    fn wider_windows_are_cheaper_at_fixed_upper() {
        let inst = synthetic::prim2().subsample(10);
        let pts = run(&inst, &[0.1, 1.0], &[0.0, 0.5, 1.0]).unwrap();
        assert!(!pts.is_empty());
        // Compare windows with the same upper bound u = 1.0:
        // [0.9, 1.0] (width .1) vs [0.0, 1.0] (width 1.0).
        let tight = pts
            .iter()
            .find(|p| (p.width - 0.1).abs() < 1e-9 && (p.lower + p.width - 1.0).abs() < 1e-6);
        let loose = pts
            .iter()
            .find(|p| (p.width - 1.0).abs() < 1e-9 && p.lower.abs() < 1e-9);
        if let (Some(t), Some(l)) = (tight, loose) {
            assert!(
                l.cost <= t.cost + 1e-6,
                "loose {} > tight {}",
                l.cost,
                t.cost
            );
        }
    }

    #[test]
    fn rendering() {
        let pts = vec![CurvePoint {
            width: 0.5,
            lower: 0.2,
            cost: 123.0,
        }];
        let s = to_text(&pts);
        assert!(s.contains("0.70")); // upper = lower + width
    }
}
