//! Minimal fixed-width table rendering for the experiment printouts.

/// Renders rows as a fixed-width ASCII table with a header rule, columns
/// right-aligned except the first.
///
/// # Example
///
/// ```
/// use lubt_bench::table::render;
/// let s = render(
///     &["bench", "cost"],
///     &[vec!["prim1".into(), "1234.5".into()]],
/// );
/// assert!(s.contains("prim1"));
/// assert!(s.lines().count() >= 3);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = width[i]));
            } else {
                line.push_str(&format!("{:>w$}", cell, w = width[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float like the paper's tables: fixed decimals, `inf` for
/// infinities.
pub fn num(x: f64, decimals: usize) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_rule() {
        let s = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["long-name".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::INFINITY, 3), "inf");
    }
}
