//! CPU-time scaling table (the §8 solver discussion): EBF solve time vs.
//! sink count for both LP backends, plus the zero-skew closed form.
//!
//! The paper reports that LOQO's interior-point method beats the simplex
//! "for large problems"; this experiment makes the crossover measurable on
//! this implementation (see EXPERIMENTS.md for the recorded verdict).
//!
//! Timing goes through the `lubt-obs` phase-timer path rather than raw
//! `Instant::now()` bookkeeping, so this table and the `lubt bench` suite
//! measure with the same clock discipline and the recorded phases land in
//! the standard `time.*` (determinism-exempt) namespace.

use crate::table::{num, render};
use lubt_core::{
    zero_skew_edge_lengths, DelayBounds, EbfSolver, LubtError, LubtProblem, SolverBackend,
};
use lubt_data::Instance;
use lubt_obs::json::json_f64;
use lubt_obs::{PhaseTimer, TraceRecorder};
use lubt_topology::{nearest_neighbor_topology, SourceMode};

/// Sink count beyond which the dense-Cholesky interior point (O(rows³)
/// per iteration) is skipped and reported as `NaN` / `-` / `null`.
pub const DEFAULT_INTERIOR_CAP: usize = 32;

/// One scaling sample.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Sink count.
    pub sinks: usize,
    /// Simplex wall time (seconds).
    pub simplex_s: f64,
    /// Interior-point wall time (seconds); `NaN` when the size was over
    /// the interior-point cap and the backend was skipped.
    pub interior_s: f64,
    /// Zero-skew closed-form wall time (seconds).
    pub zero_skew_s: f64,
    /// Steiner rows the lazy scheme materialized, out of C(m, 2).
    pub steiner_rows: usize,
    /// Total available pairs.
    pub total_pairs: usize,
}

/// Seconds recorded under `key` by `rec`, as `f64`.
fn phase_seconds(rec: &TraceRecorder, key: &str) -> f64 {
    rec.snapshot().timing_ns(key) as f64 / 1e9
}

/// Measures the scaling table on subsamples of one instance, skipping the
/// interior point above [`DEFAULT_INTERIOR_CAP`] sinks.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(instance: &Instance, sizes: &[usize]) -> Result<Vec<TimingRow>, LubtError> {
    run_with_interior_cap(instance, sizes, DEFAULT_INTERIOR_CAP)
}

/// [`run`] with an explicit interior-point size cap (rows above the cap
/// report `interior_s = NaN`).
///
/// # Errors
///
/// Propagates solver failures.
pub fn run_with_interior_cap(
    instance: &Instance,
    sizes: &[usize],
    interior_cap: usize,
) -> Result<Vec<TimingRow>, LubtError> {
    let mut rows = Vec::new();
    for &m in sizes {
        let inst = instance.subsample(m);
        let radius = inst.radius();
        let src = inst.source.expect("paper benchmarks pin the source");
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::uniform(m, 0.7 * radius, 1.2 * radius),
        )?;

        // One recorder per row: the phase keys don't collide across sizes
        // and each accumulated total is exactly one measurement.
        let rec = TraceRecorder::new();
        let report = {
            let _t = PhaseTimer::new(&rec, "time.bench.simplex");
            let (_, report) = EbfSolver::new()
                .with_backend(SolverBackend::Simplex)
                .solve(&problem)?;
            report
        };

        let interior_s = if m <= interior_cap {
            {
                let _t = PhaseTimer::new(&rec, "time.bench.interior");
                let _ = EbfSolver::new()
                    .with_backend(SolverBackend::InteriorPoint)
                    .solve(&problem)?;
            }
            phase_seconds(&rec, "time.bench.interior")
        } else {
            f64::NAN
        };

        {
            let _t = PhaseTimer::new(&rec, "time.bench.zero_skew");
            let _ = zero_skew_edge_lengths(&topo, &inst.sinks, Some(src), Some(1.5 * radius))?;
        }

        rows.push(TimingRow {
            sinks: m,
            simplex_s: phase_seconds(&rec, "time.bench.simplex"),
            interior_s,
            zero_skew_s: phase_seconds(&rec, "time.bench.zero_skew"),
            steiner_rows: report.steiner_rows,
            total_pairs: report.total_pairs,
        });
    }
    Ok(rows)
}

/// Renders the scaling table.
pub fn to_text(rows: &[TimingRow]) -> String {
    let header = [
        "sinks",
        "simplex [s]",
        "interior [s]",
        "zero-skew [s]",
        "steiner rows",
        "C(m,2)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sinks.to_string(),
                num(r.simplex_s, 4),
                if r.interior_s.is_nan() {
                    "-".to_string()
                } else {
                    num(r.interior_s, 4)
                },
                num(r.zero_skew_s, 6),
                r.steiner_rows.to_string(),
                r.total_pairs.to_string(),
            ]
        })
        .collect();
    render(&header, &body)
}

/// Serializes the rows as one strict-JSON array. Every float goes
/// through the total [`json_f64`] formatter, so a skipped interior point
/// (`NaN`) becomes `null` instead of a bare non-finite token.
pub fn rows_to_json(rows: &[TimingRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"sinks\": {}, \"simplex_s\": {}, \"interior_s\": {}, \
                 \"zero_skew_s\": {}, \"steiner_rows\": {}, \"total_pairs\": {}}}",
                r.sinks,
                json_f64(r.simplex_s),
                json_f64(r.interior_s),
                json_f64(r.zero_skew_s),
                r.steiner_rows,
                r.total_pairs
            )
        })
        .collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;
    use lubt_obs::json::validate;

    #[test]
    fn produces_rows_with_positive_times_and_caps_the_interior_point() {
        // Cap of 8 forces the m = 10 row onto the NaN path without paying
        // for a > 32-sink solve in a unit test.
        let rows = run_with_interior_cap(&synthetic::prim1(), &[6, 10], 8).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.simplex_s > 0.0 && r.zero_skew_s > 0.0);
            assert!(r.steiner_rows <= r.total_pairs);
            if r.sinks <= 8 {
                assert!(r.interior_s > 0.0, "interior point ran at m={}", r.sinks);
            } else {
                assert!(r.interior_s.is_nan(), "m={} is over the cap", r.sinks);
            }
        }
        let text = to_text(&rows);
        assert!(text.contains("simplex"));
        assert_eq!(text.lines().count(), 4);
        // The skipped backend renders as `-`, never a bare NaN.
        assert!(text.contains(" - "), "capped row renders a dash: {text}");
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn rows_serialize_to_strict_json_with_null_for_skipped_backends() {
        let rows = run_with_interior_cap(&synthetic::prim1(), &[6, 10], 8).unwrap();
        let doc = rows_to_json(&rows);
        validate(&doc).unwrap_or_else(|e| panic!("invalid timing JSON: {e}\n{doc}"));
        assert!(doc.contains("\"interior_s\": null"), "{doc}");
        assert!(!doc.contains("NaN"));
    }
}
