//! CPU-time scaling table (the §8 solver discussion): EBF solve time vs.
//! sink count for both LP backends, plus the zero-skew closed form.
//!
//! The paper reports that LOQO's interior-point method beats the simplex
//! "for large problems"; this experiment makes the crossover measurable on
//! this implementation (see EXPERIMENTS.md for the recorded verdict).

use crate::table::{num, render};
use lubt_core::{
    zero_skew_edge_lengths, DelayBounds, EbfSolver, LubtError, LubtProblem, SolverBackend,
};
use lubt_data::Instance;
use lubt_topology::{nearest_neighbor_topology, SourceMode};
use std::time::Instant;

/// One scaling sample.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Sink count.
    pub sinks: usize,
    /// Simplex wall time (seconds).
    pub simplex_s: f64,
    /// Interior-point wall time (seconds).
    pub interior_s: f64,
    /// Zero-skew closed-form wall time (seconds).
    pub zero_skew_s: f64,
    /// Steiner rows the lazy scheme materialized, out of C(m, 2).
    pub steiner_rows: usize,
    /// Total available pairs.
    pub total_pairs: usize,
}

/// Measures the scaling table on subsamples of one instance.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(instance: &Instance, sizes: &[usize]) -> Result<Vec<TimingRow>, LubtError> {
    let mut rows = Vec::new();
    for &m in sizes {
        let inst = instance.subsample(m);
        let radius = inst.radius();
        let src = inst.source.expect("paper benchmarks pin the source");
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::uniform(m, 0.7 * radius, 1.2 * radius),
        )?;

        let t = Instant::now();
        let (_, report) = EbfSolver::new()
            .with_backend(SolverBackend::Simplex)
            .solve(&problem)?;
        let simplex_s = t.elapsed().as_secs_f64();

        // The dense-Cholesky interior point is O(rows^3) per iteration and
        // becomes minutes beyond ~32 sinks; skip it there (reported as -).
        let interior_s = if m <= 32 {
            let t = Instant::now();
            let _ = EbfSolver::new()
                .with_backend(SolverBackend::InteriorPoint)
                .solve(&problem)?;
            t.elapsed().as_secs_f64()
        } else {
            f64::NAN
        };

        let t = Instant::now();
        let _ = zero_skew_edge_lengths(&topo, &inst.sinks, Some(src), Some(1.5 * radius))?;
        let zero_skew_s = t.elapsed().as_secs_f64();

        rows.push(TimingRow {
            sinks: m,
            simplex_s,
            interior_s,
            zero_skew_s,
            steiner_rows: report.steiner_rows,
            total_pairs: report.total_pairs,
        });
    }
    Ok(rows)
}

/// Renders the scaling table.
pub fn to_text(rows: &[TimingRow]) -> String {
    let header = [
        "sinks",
        "simplex [s]",
        "interior [s]",
        "zero-skew [s]",
        "steiner rows",
        "C(m,2)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sinks.to_string(),
                num(r.simplex_s, 4),
                if r.interior_s.is_nan() {
                    "-".to_string()
                } else {
                    num(r.interior_s, 4)
                },
                num(r.zero_skew_s, 6),
                r.steiner_rows.to_string(),
                r.total_pairs.to_string(),
            ]
        })
        .collect();
    render(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;

    #[test]
    fn produces_rows_with_positive_times() {
        let rows = run(&synthetic::prim1(), &[6, 10]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.simplex_s > 0.0 && r.interior_s > 0.0 && r.zero_skew_s > 0.0);
            assert!(r.steiner_rows <= r.total_pairs);
        }
        let text = to_text(&rows);
        assert!(text.contains("simplex"));
        assert_eq!(text.lines().count(), 4);
    }
}
