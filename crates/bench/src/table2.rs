//! Table 2: the same skew budget at *different* `[l, u]` windows — the
//! flexibility \[9\] lacks.
//!
//! For a fixed topology (the baseline's, at the given skew bound) and a
//! fixed skew `s`, the EBF is solved for several windows `[l, l + s]`. The
//! paper's observation: the longest delay can be traded down with only a
//! small cost increase, and the baseline's own window (marked `*`) is not
//! generally the cheapest.

use crate::table::{num, render};
use lubt_baselines::bounded_skew_tree;
use lubt_core::{DelayBounds, EbfSolver, LubtError, LubtProblem};
use lubt_data::Instance;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: String,
    /// The skew window width (radius-normalized).
    pub skew: f64,
    /// Window lower bound (radius-normalized).
    pub lower: f64,
    /// Window upper bound (radius-normalized).
    pub upper: f64,
    /// LUBT cost for this window.
    pub cost: f64,
    /// Whether this window is the one realized by the baseline (`*` rows).
    pub from_baseline: bool,
}

/// The paper's lower-bound offsets for the shifted windows, per skew
/// setting (the `*` baseline window is inserted automatically).
pub fn paper_offsets(skew: f64) -> Vec<f64> {
    if (skew - 0.3).abs() < 1e-9 {
        vec![0.70, 0.80, 0.95]
    } else {
        vec![0.50, 0.60, 0.75]
    }
}

/// Runs the Table 2 protocol for one instance and one skew setting.
///
/// # Errors
///
/// Propagates solver failures; infeasible windows are skipped (they cannot
/// occur for windows at or above the baseline's, but shifted-down windows
/// can collide with `u >= dist` on subsampled instances).
pub fn run(instance: &Instance, skew: f64, offsets: &[f64]) -> Result<Vec<Table2Row>, LubtError> {
    let radius = instance.radius();
    let m = instance.sinks.len();
    let bst = bounded_skew_tree(&instance.sinks, instance.source, skew * radius)?;
    let (short, long) = bst.delay_range();
    let baseline_window = (short / radius, long / radius);

    // Assemble (lower, from_baseline) pairs, sorted by the lower bound.
    let mut windows: Vec<(f64, bool)> = offsets.iter().map(|&l| (l, false)).collect();
    windows.push((baseline_window.0, true));
    windows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    let mut rows = Vec::new();
    for (l, from_baseline) in windows {
        let u = if from_baseline {
            baseline_window.1
        } else {
            l + skew
        };
        let bounds = DelayBounds::uniform(m, l * radius, u * radius);
        let problem = LubtProblem::new(
            instance.sinks.clone(),
            instance.source,
            bst.topology.clone(),
            bounds,
        )?;
        match EbfSolver::new().solve(&problem) {
            Ok((lengths, _)) => rows.push(Table2Row {
                bench: instance.name.clone(),
                skew,
                lower: l,
                upper: u,
                cost: lubt_delay::linear::tree_cost(&lengths),
                from_baseline,
            }),
            // Window below the radius: either the lint hook or the LP
            // certifies it, depending on where the sweep point lands.
            Err(LubtError::Infeasible | LubtError::Rejected(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(rows)
}

/// Renders rows in the paper's column layout (baseline windows starred).
pub fn to_text(rows: &[Table2Row]) -> String {
    let header = ["bench", "skew", "lower", "upper", "LUBT cost"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let star = if r.from_baseline { "*" } else { "" };
            vec![
                r.bench.clone(),
                num(r.skew, 1),
                format!("{star}{}", num(r.lower, 2)),
                format!("{star}{}", num(r.upper, 2)),
                num(r.cost, 1),
            ]
        })
        .collect();
    render(&header, &body)
}

/// Renders rows as CSV, for external plotting.
pub fn to_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from("bench,skew,lower,upper,cost,from_baseline\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.bench, r.skew, r.lower, r.upper, r.cost, r.from_baseline
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;

    #[test]
    fn windows_vary_cost_at_fixed_skew() {
        let inst = synthetic::prim1().subsample(12);
        let rows = run(&inst, 0.5, &paper_offsets(0.5)).unwrap();
        assert!(rows.len() >= 2);
        // All rows share the skew width (except the starred baseline row,
        // whose width is the *realized* skew <= bound).
        for r in &rows {
            if !r.from_baseline {
                assert!((r.upper - r.lower - 0.5).abs() < 1e-9);
            } else {
                assert!(r.upper - r.lower <= 0.5 + 1e-9);
            }
        }
        // Exactly one starred row.
        assert_eq!(rows.iter().filter(|r| r.from_baseline).count(), 1);
        // Costs are not all identical (the window placement matters).
        let min = rows.iter().map(|r| r.cost).fold(f64::INFINITY, f64::min);
        let max = rows.iter().map(|r| r.cost).fold(0.0, f64::max);
        assert!(max > min - 1e-9);
    }

    #[test]
    fn offsets_match_paper() {
        assert_eq!(paper_offsets(0.3), vec![0.70, 0.80, 0.95]);
        assert_eq!(paper_offsets(0.5), vec![0.50, 0.60, 0.75]);
    }
}
