//! Table 1: routing cost of the bounded-skew baseline vs. LUBT.
//!
//! Protocol (verbatim from §8): for each benchmark and each skew bound,
//! run the \[9\]-style bounded-skew construction, extract its **topology**
//! and the realized **\[shortest, longest\] sink delays**, then run the EBF
//! with that window as `[l, u]` on the *same topology*. The paper's claim —
//! reproduced here — is that LUBT matches or undercuts the baseline cost on
//! the baseline's own delay window.

use crate::table::{num, render};
use lubt_baselines::bounded_skew_tree;
use lubt_core::{BatchSolver, DelayBounds, LubtError, LubtProblem};
use lubt_data::Instance;

/// The skew bounds of Table 1, normalized to the radius.
pub const PAPER_SKEW_BOUNDS: [f64; 8] = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, f64::INFINITY];

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Skew bound (radius-normalized).
    pub skew_bound: f64,
    /// Baseline's realized shortest sink delay / radius.
    pub shortest: f64,
    /// Baseline's realized longest sink delay / radius.
    pub longest: f64,
    /// Baseline tree cost.
    pub baseline_cost: f64,
    /// LUBT cost on the same topology and window.
    pub lubt_cost: f64,
}

/// Runs the Table 1 protocol on one instance.
///
/// # Errors
///
/// Propagates construction/solver failures (none expected for valid
/// instances — all windows are realized by the baseline, so the EBF is
/// feasible by construction).
pub fn run(instance: &Instance, skew_bounds: &[f64]) -> Result<Vec<Table1Row>, LubtError> {
    run_with_threads(instance, skew_bounds, 0)
}

/// [`run`] with the per-skew-bound EBF solves pushed through a
/// [`BatchSolver`] on `threads` workers (`0` = all cores). The rows are
/// identical for every thread count — batching only reclaims the
/// wall-clock the skew sweep spends in independent LP solves.
///
/// # Errors
///
/// See [`run`].
pub fn run_with_threads(
    instance: &Instance,
    skew_bounds: &[f64],
    threads: usize,
) -> Result<Vec<Table1Row>, LubtError> {
    let radius = instance.radius();
    // Phase 1 (sequential): baselines, whose topologies and realized delay
    // windows define the EBF instances.
    let mut baselines = Vec::with_capacity(skew_bounds.len());
    let mut problems = Vec::with_capacity(skew_bounds.len());
    for &sb in skew_bounds {
        let bst = bounded_skew_tree(&instance.sinks, instance.source, sb * radius)?;
        let (short, long) = bst.delay_range();
        // The infinite-skew row mirrors the paper: l = 0, u = inf (pure
        // Steiner minimization under the baseline topology).
        let bounds = if sb.is_infinite() {
            DelayBounds::unbounded(instance.sinks.len())
        } else {
            DelayBounds::uniform(instance.sinks.len(), short, long)
        };
        problems.push(LubtProblem::new(
            instance.sinks.clone(),
            instance.source,
            bst.topology.clone(),
            bounds,
        )?);
        baselines.push((sb, short, long, bst.cost()));
    }

    // Phase 2 (parallel): one independent EBF solve per skew bound.
    let solved = BatchSolver::new()
        .with_threads(threads)
        .solve_ebf_all(&problems);

    let mut rows = Vec::with_capacity(skew_bounds.len());
    for ((sb, short, long, baseline_cost), result) in baselines.into_iter().zip(solved) {
        let (lengths, _) = result?;
        rows.push(Table1Row {
            bench: instance.name.clone(),
            skew_bound: sb,
            shortest: if sb.is_infinite() {
                0.0
            } else {
                short / radius
            },
            longest: if sb.is_infinite() {
                f64::INFINITY
            } else {
                long / radius
            },
            baseline_cost,
            lubt_cost: lubt_delay::linear::tree_cost(&lengths),
        });
    }
    Ok(rows)
}

/// Renders rows in the paper's column layout.
pub fn to_text(rows: &[Table1Row]) -> String {
    let header = [
        "bench",
        "skew bound",
        "shortest delay",
        "longest delay",
        "baseline cost",
        "LUBT cost",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                num(r.skew_bound, 3),
                num(r.shortest, 3),
                num(r.longest, 3),
                num(r.baseline_cost, 1),
                num(r.lubt_cost, 2),
            ]
        })
        .collect();
    render(&header, &body)
}

/// Renders rows as CSV (header + one line per row), for external plotting.
pub fn to_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from("bench,skew_bound,shortest,longest,baseline_cost,lubt_cost\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.bench, r.skew_bound, r.shortest, r.longest, r.baseline_cost, r.lubt_cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_data::synthetic;

    #[test]
    fn lubt_never_costs_more_than_baseline() {
        let inst = synthetic::prim1().subsample(14);
        let rows = run(&inst, &[0.0, 0.5, f64::INFINITY]).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.lubt_cost <= r.baseline_cost + 1e-6 * (1.0 + r.baseline_cost),
                "skew {}: LUBT {} > baseline {}",
                r.skew_bound,
                r.lubt_cost,
                r.baseline_cost
            );
        }
        // Looser skew gives cheaper trees on both sides.
        assert!(rows[2].lubt_cost <= rows[0].lubt_cost + 1e-6);
    }

    #[test]
    fn threads_do_not_change_the_table() {
        let inst = synthetic::prim1().subsample(12);
        let bounds = [0.1, 1.0, f64::INFINITY];
        let base = run_with_threads(&inst, &bounds, 1).unwrap();
        for threads in [2, 4, 0] {
            let rows = run_with_threads(&inst, &bounds, threads).unwrap();
            assert_eq!(rows.len(), base.len());
            for (a, b) in base.iter().zip(rows.iter()) {
                assert_eq!(a.lubt_cost.to_bits(), b.lubt_cost.to_bits());
                assert_eq!(a.baseline_cost.to_bits(), b.baseline_cost.to_bits());
            }
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![Table1Row {
            bench: "x".into(),
            skew_bound: 0.5,
            shortest: 0.7,
            longest: 1.2,
            baseline_cost: 100.0,
            lubt_cost: 95.0,
        }];
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("bench,"));
        assert!(csv.contains("x,0.5,0.7,1.2,100,95"));
    }

    #[test]
    fn rendering_contains_all_rows() {
        let inst = synthetic::r1().subsample(10);
        let rows = run(&inst, &[0.1, 1.0]).unwrap();
        let text = to_text(&rows);
        assert_eq!(text.lines().count(), 2 + rows.len());
        assert!(text.contains("r1-synthetic"));
    }
}
