//! Instance selection and scaling shared by the experiments.

use lubt_data::{synthetic, Instance};

/// Default per-instance sink count for experiment runs (the full published
/// sizes take minutes per table; see the crate docs).
pub const DEFAULT_SINKS: usize = 48;

/// Reads the scaling policy from the environment: `LUBT_FULL=1` runs the
/// published sink counts, `LUBT_SINKS=<n>` picks an explicit size,
/// otherwise [`DEFAULT_SINKS`].
pub fn scale_from_env() -> Option<usize> {
    if std::env::var("LUBT_FULL").is_ok_and(|v| v == "1") {
        return None; // no subsampling
    }
    match std::env::var("LUBT_SINKS") {
        Ok(v) => v.parse().ok().or(Some(DEFAULT_SINKS)),
        Err(_) => Some(DEFAULT_SINKS),
    }
}

/// The four paper benchmarks, optionally subsampled to `scale` sinks.
pub fn paper_benchmarks(scale: Option<usize>) -> Vec<Instance> {
    synthetic::paper_benchmarks()
        .into_iter()
        .map(|inst| match scale {
            Some(k) => inst.subsample(k),
            None => inst,
        })
        .collect()
}

/// One named benchmark (`"prim1" | "prim2" | "r1" | "r3"`), scaled.
pub fn by_name(name: &str, scale: Option<usize>) -> Option<Instance> {
    let inst = match name {
        "prim1" => synthetic::prim1(),
        "prim2" => synthetic::prim2(),
        "r1" => synthetic::r1(),
        "r3" => synthetic::r3(),
        _ => return None,
    };
    Some(match scale {
        Some(k) => inst.subsample(k),
        None => inst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_subsamples() {
        let v = paper_benchmarks(Some(10));
        assert_eq!(v.len(), 4);
        for inst in v {
            assert_eq!(inst.sinks.len(), 10);
        }
        assert_eq!(paper_benchmarks(None)[1].sinks.len(), 603);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("r1", Some(5)).unwrap().sinks.len(), 5);
        assert!(by_name("nope", None).is_none());
    }
}
