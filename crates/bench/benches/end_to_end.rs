//! Full LUBT pipeline (topology generation + EBF + embedding) vs. sink
//! count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{DelayBounds, LubtBuilder};
use lubt_data::synthetic;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("lubt_end_to_end");
    g.sample_size(10);
    for m in [8usize, 16, 32] {
        let inst = synthetic::prim2().subsample(m);
        let radius = inst.radius();
        g.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| {
                LubtBuilder::new(inst.sinks.clone())
                    .source(inst.source.expect("synthetic instances pin the source"))
                    .bounds(DelayBounds::uniform(m, 0.6 * radius, 1.1 * radius))
                    .solve()
                    .expect("feasible")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
