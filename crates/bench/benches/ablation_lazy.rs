//! Ablation: lazy Steiner-constraint separation (§4.6 reduction) vs.
//! materializing all C(m, 2) rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{DelayBounds, EbfSolver, LubtProblem, SteinerMode};
use lubt_data::synthetic;

fn problem(m: usize) -> LubtProblem {
    let inst = synthetic::prim1().subsample(m);
    let radius = inst.radius();
    let topo =
        lubt_topology::nearest_neighbor_topology(&inst.sinks, lubt_topology::SourceMode::Given);
    LubtProblem::new(
        inst.sinks.clone(),
        inst.source,
        topo,
        DelayBounds::uniform(m, 0.7 * radius, 1.2 * radius),
    )
    .expect("valid problem")
}

fn bench_lazy_vs_eager(c: &mut Criterion) {
    let mut g = c.benchmark_group("steiner_constraints");
    g.sample_size(10);
    for m in [12usize, 24, 48] {
        let p = problem(m);
        g.bench_with_input(BenchmarkId::new("lazy", m), &p, |b, p| {
            b.iter(|| {
                EbfSolver::new()
                    .with_steiner_mode(SteinerMode::default_lazy())
                    .solve(p)
                    .expect("feasible")
            })
        });
        g.bench_with_input(BenchmarkId::new("eager", m), &p, |b, p| {
            b.iter(|| {
                EbfSolver::new()
                    .with_steiner_mode(SteinerMode::Eager)
                    .solve(p)
                    .expect("feasible")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lazy_vs_eager);
criterion_main!(benches);
