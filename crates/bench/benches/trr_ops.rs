//! Throughput of the TRR / octilinear-region algebra underlying the
//! embedder and the baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lubt_geom::{Octilinear, Point, Trr};

fn bench_trr(c: &mut Criterion) {
    let a = Trr::from_center_radius(Point::new(0.0, 0.0), 13.0);
    let b = Trr::from_center_radius(Point::new(17.0, 5.0), 9.0);
    let p = Point::new(40.0, -3.0);

    c.bench_function("trr_expand", |bench| {
        bench.iter(|| black_box(a).expanded(black_box(2.5)))
    });
    c.bench_function("trr_intersect", |bench| {
        bench.iter(|| black_box(a).intersect(&black_box(b)))
    });
    c.bench_function("trr_dist", |bench| {
        bench.iter(|| black_box(a).dist(&black_box(b)))
    });
    c.bench_function("trr_closest_point", |bench| {
        bench.iter(|| black_box(a).closest_point_to(black_box(p)))
    });
}

fn bench_octilinear(c: &mut Criterion) {
    let a = Octilinear::from_point(Point::new(0.0, 0.0)).expanded(13.0);
    let b = Octilinear::from_point(Point::new(17.0, 5.0)).expanded(9.0);
    let p = Point::new(40.0, -3.0);

    c.bench_function("oct_expand", |bench| {
        bench.iter(|| black_box(a).expanded(black_box(2.5)))
    });
    c.bench_function("oct_intersect", |bench| {
        bench.iter(|| black_box(a).intersect(&black_box(b)))
    });
    c.bench_function("oct_dist", |bench| {
        bench.iter(|| black_box(a).dist(&black_box(b)))
    });
    c.bench_function("oct_closest_point", |bench| {
        bench.iter(|| black_box(a).closest_point_to(black_box(p)))
    });
}

criterion_group!(benches, bench_trr, bench_octilinear);
criterion_main!(benches);
