//! Ablation: topology generators feeding the EBF — nearest-neighbor merge
//! (the paper's choice), recursive matching, balanced bisection, and the
//! §9 future-work *bound-aware* generator, measured on a workload with
//! heterogeneous per-sink windows (where bound-awareness should matter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{bound_aware_topology, DelayBounds, EbfSolver, LubtProblem};
use lubt_data::synthetic;
use lubt_geom::Point;
use lubt_topology::{
    bipartition_topology, matching_topology, nearest_neighbor_topology, SourceMode, Topology,
};

/// Pipeline-style instance: two interleaved sink groups with disjoint
/// arrival windows.
fn heterogeneous_instance(m: usize) -> (Vec<Point>, Point, DelayBounds) {
    let inst = synthetic::prim1().subsample(m);
    let src = inst.source.expect("synthetic instances pin the source");
    let radius = inst.radius();
    let pairs = (0..m)
        .map(|i| {
            if i % 2 == 0 {
                (1.0 * radius, 1.15 * radius)
            } else {
                (1.4 * radius, 1.55 * radius)
            }
        })
        .collect();
    (
        inst.sinks,
        src,
        DelayBounds::from_pairs(pairs).expect("valid windows"),
    )
}

fn solve_with(topology: Topology, sinks: &[Point], src: Point, bounds: &DelayBounds) -> f64 {
    let p = LubtProblem::new(sinks.to_vec(), Some(src), topology, bounds.clone())
        .expect("valid problem");
    let (lengths, _) = EbfSolver::new().solve(&p).expect("feasible");
    lubt_delay::linear::tree_cost(&lengths)
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_generators");
    g.sample_size(10);
    for m in [12usize, 24] {
        let (sinks, src, bounds) = heterogeneous_instance(m);
        g.bench_with_input(BenchmarkId::new("nearest_neighbor", m), &sinks, |b, s| {
            b.iter(|| {
                solve_with(
                    nearest_neighbor_topology(s, SourceMode::Given),
                    s,
                    src,
                    &bounds,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("matching", m), &sinks, |b, s| {
            b.iter(|| solve_with(matching_topology(s, SourceMode::Given), s, src, &bounds))
        });
        g.bench_with_input(BenchmarkId::new("bisection", m), &sinks, |b, s| {
            b.iter(|| solve_with(bipartition_topology(s, SourceMode::Given), s, src, &bounds))
        });
        g.bench_with_input(BenchmarkId::new("bound_aware", m), &sinks, |b, s| {
            b.iter(|| {
                solve_with(
                    bound_aware_topology(s, Some(src), &bounds).expect("valid"),
                    s,
                    src,
                    &bounds,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
