//! Cost of the observability layer: `EbfSolver::solve` vs.
//! `solve_traced` on the same instances.
//!
//! The `Recorder` indirection is always present in the solver hot loops;
//! the question this bench answers is what the *enabled* path (atomic
//! counter bumps, mutex-guarded maps, phase timers) adds over the noop
//! recorder, and that the traced solve still computes the same bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{DelayBounds, EbfSolver, LubtBuilder, LubtProblem};
use lubt_data::synthetic;

fn build_instances() -> Vec<LubtProblem> {
    synthetic::paper_benchmarks()
        .into_iter()
        .map(|inst| {
            let inst = inst.subsample(16);
            let radius = inst.radius();
            LubtBuilder::new(inst.sinks.clone())
                .source(inst.source.expect("synthetic instances pin the source"))
                .bounds(DelayBounds::uniform(16, 0.9 * radius, 1.4 * radius))
                .build()
                .expect("valid instance")
        })
        .collect()
}

fn bench_trace_overhead(c: &mut Criterion) {
    let problems = build_instances();
    let solver = EbfSolver::new();

    // Tracing must be free of *semantic* cost: identical bits either way.
    for p in &problems {
        let plain = solver.solve(p).expect("feasible");
        let (traced, trace) = solver.solve_traced(p);
        let traced = traced.expect("feasible");
        assert_eq!(plain.0, traced.0, "tracing changed the edge lengths");
        assert_eq!(plain.1, traced.1, "tracing changed the report");
        assert!(trace.counter("simplex.solves") >= 1);
    }

    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    for (label, traced) in [("untraced", false), ("traced", true)] {
        g.bench_with_input(
            BenchmarkId::new("ebf_solve", label),
            &traced,
            |b, &traced| {
                b.iter(|| {
                    for p in &problems {
                        if traced {
                            let (r, trace) = solver.solve_traced(p);
                            criterion::black_box((r.unwrap(), trace));
                        } else {
                            criterion::black_box(solver.solve(p).unwrap());
                        }
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
