//! Cost of the §5 geometric embedding (bottom-up feasible regions +
//! top-down placement) on zero-skew edge lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{embed_tree, zero_skew_edge_lengths, PlacementPolicy};
use lubt_data::synthetic;
use lubt_topology::{nearest_neighbor_topology, SourceMode};

fn bench_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("embedding");
    for m in [64usize, 256] {
        let inst = synthetic::r1().subsample(m);
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Free);
        let z = zero_skew_edge_lengths(&topo, &inst.sinks, None, None).expect("zst");
        g.bench_with_input(
            BenchmarkId::new("closest_to_parent", m),
            &(&topo, &inst.sinks, &z.edge_lengths),
            |b, (topo, sinks, lengths)| {
                b.iter(|| {
                    embed_tree(topo, sinks, None, lengths, PlacementPolicy::ClosestToParent)
                        .expect("embeddable")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("center", m),
            &(&topo, &inst.sinks, &z.edge_lengths),
            |b, (topo, sinks, lengths)| {
                b.iter(|| {
                    embed_tree(topo, sinks, None, lengths, PlacementPolicy::Center)
                        .expect("embeddable")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
