//! Work-stealing batch throughput vs. thread count.
//!
//! A Table-1-sized batch of independent EBF instances is pushed through
//! `BatchSolver` at 1/2/4/8 workers. Every thread count produces
//! bit-identical results (asserted here before timing), so the sweep
//! measures pure scheduling overhead and scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{BatchSolver, DelayBounds, LubtBuilder, LubtProblem};
use lubt_data::synthetic;

/// A batch of independent instances: every paper benchmark at several
/// sizes and delay windows.
fn build_batch() -> Vec<LubtProblem> {
    let mut problems = Vec::new();
    for inst in synthetic::paper_benchmarks() {
        for m in [12usize, 18, 24] {
            let inst = inst.subsample(m);
            let radius = inst.radius();
            for (lo, hi) in [(0.6, 1.1), (0.9, 1.4)] {
                problems.push(
                    LubtBuilder::new(inst.sinks.clone())
                        .source(inst.source.expect("synthetic instances pin the source"))
                        .bounds(DelayBounds::uniform(m, lo * radius, hi * radius))
                        .build()
                        .expect("valid instance"),
                );
            }
        }
    }
    problems
}

fn bench_batch(c: &mut Criterion) {
    let problems = build_batch();

    // Determinism gate: the timing sweep below is only meaningful if every
    // thread count computes the same answers.
    let baseline = BatchSolver::new().with_threads(1).solve_ebf_all(&problems);
    for threads in [2usize, 4, 8] {
        let other = BatchSolver::new()
            .with_threads(threads)
            .solve_ebf_all(&problems);
        for (a, b) in baseline.iter().zip(other.iter()) {
            match (a, b) {
                (Ok((la, ra)), Ok((lb, rb))) => {
                    assert_eq!(la, lb, "threads={threads}");
                    assert_eq!(ra, rb, "threads={threads}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("threads={threads}: Ok/Err mismatch"),
            }
        }
    }

    let mut g = c.benchmark_group("par_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("batch", threads),
            &problems,
            |b, problems| {
                let solver = BatchSolver::new().with_threads(threads);
                b.iter(|| solver.solve_ebf_all(problems));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
