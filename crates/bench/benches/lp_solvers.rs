//! Simplex vs. interior point on EBF LPs of growing size — revisiting the
//! paper's remark that interior-point methods (LOQO) win on large
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{DelayBounds, EbfSolver, LubtProblem, SolverBackend};
use lubt_data::synthetic;

fn ebf_problem(m: usize) -> LubtProblem {
    let inst = synthetic::prim1().subsample(m);
    let radius = inst.radius();
    let topo =
        lubt_topology::nearest_neighbor_topology(&inst.sinks, lubt_topology::SourceMode::Given);
    LubtProblem::new(
        inst.sinks.clone(),
        inst.source,
        topo,
        DelayBounds::uniform(m, 0.7 * radius, 1.2 * radius),
    )
    .expect("valid problem")
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("ebf_lp_backends");
    g.sample_size(10);
    for m in [8usize, 16, 32] {
        let problem = ebf_problem(m);
        g.bench_with_input(BenchmarkId::new("simplex", m), &problem, |b, p| {
            b.iter(|| {
                EbfSolver::new()
                    .with_backend(SolverBackend::Simplex)
                    .solve(p)
                    .expect("feasible")
            })
        });
        // The dense-Cholesky interior point takes seconds per solve beyond
        // 16 sinks; keep the bench suite's wall clock sane.
        if m <= 16 {
            g.bench_with_input(BenchmarkId::new("interior_point", m), &problem, |b, p| {
                b.iter(|| {
                    EbfSolver::new()
                        .with_backend(SolverBackend::InteriorPoint)
                        .solve(p)
                        .expect("feasible")
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
