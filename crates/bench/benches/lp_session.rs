//! Re-solve strategies for a growing LP (the lazy-separation pattern):
//! cold two-phase solves each round, warm basis reconstruction
//! (`solve_warm`), and the incremental tableau session (`SimplexSession`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_lp::{Cmp, LinExpr, LpSolve, Model, SimplexSession, SimplexSolver, Var};

/// Deterministic covering-LP growth schedule: a base row plus `rounds`
/// batches of rows over `n` variables.
type GrowthBatches = Vec<Vec<(Vec<usize>, f64)>>;

fn schedule(n: usize, rounds: usize, per_round: usize) -> (Model, Vec<Var>, GrowthBatches) {
    let mut m = Model::new();
    let vars = m.add_vars(n, 0.0, 1.0);
    m.add_constraint(
        LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0))),
        Cmp::Ge,
        n as f64,
    );
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut batches = Vec::new();
    for _ in 0..rounds {
        let mut batch = Vec::new();
        for _ in 0..per_round {
            let k = 2 + next() % 4;
            let cols: Vec<usize> = (0..k).map(|_| next() % n).collect();
            let rhs = 1.0 + (next() % 50) as f64 / 10.0;
            batch.push((cols, rhs));
        }
        batches.push(batch);
    }
    (m, vars, batches)
}

fn bench_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_growth");
    g.sample_size(10);
    for n in [32usize, 64] {
        let rounds = 6;
        let per_round = n / 2;
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |bench, &n| {
            bench.iter(|| {
                let (mut m, vars, batches) = schedule(n, rounds, per_round);
                let solver = SimplexSolver::new();
                let mut last = solver.solve(&m).unwrap().objective();
                for batch in &batches {
                    for (cols, rhs) in batch {
                        let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
                        m.add_constraint(e, Cmp::Ge, *rhs);
                    }
                    last = solver.solve(&m).unwrap().objective();
                }
                last
            })
        });
        g.bench_with_input(BenchmarkId::new("warm_reconstruct", n), &n, |bench, &n| {
            bench.iter(|| {
                let (mut m, vars, batches) = schedule(n, rounds, per_round);
                let solver = SimplexSolver::new();
                let (sol, mut warm) = solver.solve_warm(&m, None).unwrap();
                let mut last = sol.objective();
                for batch in &batches {
                    for (cols, rhs) in batch {
                        let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
                        m.add_constraint(e, Cmp::Ge, *rhs);
                    }
                    let (sol, next) = solver.solve_warm(&m, warm.as_ref()).unwrap();
                    last = sol.objective();
                    warm = next;
                }
                last
            })
        });
        g.bench_with_input(BenchmarkId::new("session", n), &n, |bench, &n| {
            bench.iter(|| {
                let (m, vars, batches) = schedule(n, rounds, per_round);
                let mut session = SimplexSession::start(m).unwrap();
                let mut last = session.solution().objective();
                for batch in &batches {
                    for (cols, rhs) in batch {
                        let e = LinExpr::from_terms(cols.iter().map(|&c| (vars[c], 1.0)));
                        session.add_constraint(e, Cmp::Ge, *rhs).unwrap();
                    }
                    last = session.resolve().unwrap().objective();
                }
                last
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_growth);
criterion_main!(benches);
