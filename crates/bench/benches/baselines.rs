//! Construction throughput of the baseline algorithms (BST, ZST, SPT) —
//! the non-LP side of the Table 1 protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_baselines::{bounded_skew_tree, shortest_path_tree, zero_skew_tree};
use lubt_data::synthetic;
use lubt_topology::{nearest_neighbor_topology, SourceMode};

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    for m in [64usize, 256] {
        let inst = synthetic::prim2().subsample(m);
        let src = inst.source.expect("synthetic instances pin the source");
        let radius = inst.radius();

        g.bench_with_input(BenchmarkId::new("bst_dme", m), &inst, |b, inst| {
            b.iter(|| bounded_skew_tree(&inst.sinks, Some(src), 0.1 * radius).expect("valid"))
        });
        g.bench_with_input(BenchmarkId::new("zst_dme", m), &inst, |b, inst| {
            b.iter(|| zero_skew_tree(&inst.sinks, Some(src), None, None).expect("valid"))
        });
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
        g.bench_with_input(
            BenchmarkId::new("spt", m),
            &(&topo, &inst.sinks),
            |b, (topo, sinks)| b.iter(|| shortest_path_tree(topo, sinks, src)),
        );
        g.bench_with_input(BenchmarkId::new("nn_topology", m), &inst, |b, inst| {
            b.iter(|| nearest_neighbor_topology(&inst.sinks, SourceMode::Given))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
