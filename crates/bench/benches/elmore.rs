//! Cost of the §7 Elmore-delay machinery: Tsay's exact zero-skew merge and
//! the sequential-LP bounded-delay solver, against their linear-delay
//! counterparts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_baselines::{elmore_zero_skew_tree, zero_skew_tree};
use lubt_core::{DelayBounds, EbfSolver, ElmoreEbf, LubtProblem};
use lubt_data::synthetic;
use lubt_delay::elmore::{node_delays, ElmoreParams};
use lubt_topology::{nearest_neighbor_topology, SourceMode};

fn bench_elmore(c: &mut Criterion) {
    let mut g = c.benchmark_group("elmore");
    g.sample_size(10);
    for m in [8usize, 16] {
        let inst = synthetic::prim1().subsample(m);
        let src = inst.source.expect("synthetic instances pin the source");
        let params = ElmoreParams::uniform(0.05, 0.2, 1.0, m);

        g.bench_with_input(BenchmarkId::new("zst_linear", m), &inst, |b, inst| {
            b.iter(|| zero_skew_tree(&inst.sinks, Some(src), None, None).expect("valid"))
        });
        g.bench_with_input(BenchmarkId::new("zst_elmore", m), &inst, |b, inst| {
            b.iter(|| {
                elmore_zero_skew_tree(&inst.sinks, Some(src), None, params.clone()).expect("valid")
            })
        });

        // Windowed solves: probe the relaxed tree to scale the bounds.
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
        let relaxed = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::unbounded(m),
        )
        .expect("valid");
        let (lengths, _) = EbfSolver::new().solve(&relaxed).expect("feasible");
        let d = node_delays(&topo, &lengths, &params);
        let dmax = topo.sinks().map(|s| d[s.index()]).fold(0.0f64, f64::max);
        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::upper_only(m, 1.3 * dmax),
        )
        .expect("valid");
        g.bench_with_input(BenchmarkId::new("slp_upper_only", m), &problem, |b, p| {
            b.iter(|| ElmoreEbf::new(params.clone()).solve(p).expect("feasible"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_elmore);
criterion_main!(benches);
