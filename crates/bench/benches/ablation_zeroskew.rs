//! Ablation: the §4.6 zero-skew closed form (bottom-up merging, no LP)
//! vs. the general EBF LP at `l = u`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lubt_core::{zero_skew_edge_lengths, DelayBounds, EbfSolver, LubtProblem};
use lubt_data::synthetic;
use lubt_topology::{nearest_neighbor_topology, SourceMode};

fn bench_zero_skew_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("zero_skew");
    g.sample_size(10);
    for m in [16usize, 32, 64] {
        let inst = synthetic::r1().subsample(m);
        let src = inst.source.expect("synthetic instances pin the source");
        let topo = nearest_neighbor_topology(&inst.sinks, SourceMode::Given);
        let radius = inst.radius();
        // A zero-skew target comfortably above the radius.
        let target = 1.5 * radius;

        g.bench_with_input(
            BenchmarkId::new("closed_form", m),
            &(&topo, &inst.sinks),
            |b, (topo, sinks)| {
                b.iter(|| {
                    zero_skew_edge_lengths(topo, sinks, Some(src), Some(target))
                        .expect("feasible target")
                })
            },
        );

        let problem = LubtProblem::new(
            inst.sinks.clone(),
            Some(src),
            topo.clone(),
            DelayBounds::zero_skew(m, target),
        )
        .expect("valid problem");
        g.bench_with_input(BenchmarkId::new("lp", m), &problem, |b, p| {
            b.iter(|| EbfSolver::new().solve(p).expect("feasible"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_zero_skew_paths);
criterion_main!(benches);
