//! Pass registry: the list of lint passes, their effective levels, and the
//! driver that runs them over a [`LintInput`].

use crate::diagnostic::{Diagnostic, Level};
use crate::passes;
use lubt_geom::Point;
use lubt_lp::Model;
use lubt_topology::{SourceMode, Topology};

/// A borrowed view of everything the lint passes may inspect.
///
/// Deliberately *not* `lubt_core::LubtProblem`: the lint crate sits below
/// `lubt-core` in the dependency graph so that core can run lints as a
/// pre-solve hook. Core (and the CLI) assemble this view from a problem;
/// tests can assemble it from raw parts.
#[derive(Debug, Clone, Copy)]
pub struct LintInput<'a> {
    /// Sink locations; index `i` is topology node `i + 1`.
    pub sinks: &'a [Point],
    /// Source location when the source is part of the input
    /// ([`SourceMode::Given`]); `None` when the embedding chooses it.
    pub source: Option<Point>,
    /// The routing-tree topology under analysis.
    pub topology: &'a Topology,
    /// How node 0 is interpreted (drives the binary-shape check).
    pub source_mode: SourceMode,
    /// Per-sink lower delay bounds `l_i`; index `i` is node `i + 1`.
    pub lower: &'a [f64],
    /// Per-sink upper delay bounds `u_i`; index `i` is node `i + 1`.
    pub upper: &'a [f64],
    /// The generated EBF LP model, when available. Model-level passes are
    /// skipped when `None`.
    pub model: Option<&'a Model>,
}

/// One named static-analysis pass.
pub trait LintPass {
    /// Stable kebab-case identifier (shown in diagnostics, used for level
    /// overrides).
    fn slug(&self) -> &'static str;
    /// Level the pass fires at unless overridden.
    fn default_level(&self) -> Level;
    /// One-line description of what the pass detects.
    fn description(&self) -> &'static str;
    /// Runs the pass, appending findings (emitted at `level`) to `out`.
    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lint passes with per-pass level overrides.
pub struct LintRegistry {
    passes: Vec<Box<dyn LintPass>>,
    overrides: Vec<(&'static str, Level)>,
}

impl LintRegistry {
    /// Registry with no passes; populate via [`LintRegistry::register`].
    pub fn empty() -> Self {
        LintRegistry {
            passes: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// Adds a pass at the end of the run order.
    pub fn register(&mut self, pass: Box<dyn LintPass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Overrides the level of the pass with the given slug. `Level::Allow`
    /// disables the pass entirely. Unknown slugs are ignored (the override
    /// simply never matches).
    pub fn set_level(&mut self, slug: &'static str, level: Level) -> &mut Self {
        if let Some(entry) = self.overrides.iter_mut().find(|(s, _)| *s == slug) {
            entry.1 = level;
        } else {
            self.overrides.push((slug, level));
        }
        self
    }

    /// Effective level for a pass: the override when present, the pass's
    /// default otherwise.
    pub fn level_of(&self, pass: &dyn LintPass) -> Level {
        self.overrides
            .iter()
            .find(|(s, _)| *s == pass.slug())
            .map(|(_, l)| *l)
            .unwrap_or_else(|| pass.default_level())
    }

    /// `(slug, effective level, description)` for every registered pass, in
    /// run order.
    pub fn describe(&self) -> Vec<(&'static str, Level, &'static str)> {
        self.passes
            .iter()
            .map(|p| (p.slug(), self.level_of(p.as_ref()), p.description()))
            .collect()
    }

    /// Runs every enabled pass over `input`, collecting all findings.
    pub fn run(&self, input: &LintInput<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for pass in &self.passes {
            let level = self.level_of(pass.as_ref());
            if level == Level::Allow {
                continue;
            }
            pass.check(input, level, &mut out);
        }
        out
    }
}

impl Default for LintRegistry {
    /// The standard registry: all five built-in passes at their default
    /// levels.
    fn default() -> Self {
        let mut r = LintRegistry::empty();
        r.register(Box::new(passes::SinkReachability))
            .register(Box::new(passes::WindowConflict))
            .register(Box::new(passes::ZeroSkewConsistency))
            .register(Box::new(passes::TopologyShape))
            .register(Box::new(passes::ModelConditioning));
        r
    }
}

impl std::fmt::Debug for LintRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LintRegistry")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.slug()).collect::<Vec<_>>(),
            )
            .field("overrides", &self.overrides)
            .finish()
    }
}

/// Runs the default registry over `input`.
pub fn lint(input: &LintInput<'_>) -> Vec<Diagnostic> {
    LintRegistry::default().run(input)
}
