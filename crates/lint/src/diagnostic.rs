//! The structured diagnostic type shared by every lint pass (and, through
//! `lubt-core`, by post-hoc solution verification).

use std::fmt;

/// Severity of a lint pass, clippy-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The pass is disabled; it does not run at all.
    Allow,
    /// The finding is reported but does not reject the instance.
    Warn,
    /// The finding proves the instance unusable (infeasible LP, broken
    /// invariant); solving must not be attempted.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warning",
            Level::Deny => "error",
        })
    }
}

/// What a diagnostic points at: problem entities (by node index) or LP
/// entities (by row id in the linted model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// A sink, by its node index in the topology (`1..=m`).
    Sink(usize),
    /// Any tree node (source, sink or Steiner), by node index.
    Node(usize),
    /// An edge, identified by its child node index.
    Edge(usize),
    /// An unordered pair of sinks, by node indices.
    SinkPair(usize, usize),
    /// A row (constraint) of the linted LP model, by 0-based index.
    Row(usize),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Sink(i) => write!(f, "s{i}"),
            Target::Node(i) => write!(f, "n{i}"),
            Target::Edge(i) => write!(f, "e{i}"),
            Target::SinkPair(i, j) => write!(f, "(s{i}, s{j})"),
            Target::Row(r) => write!(f, "row{r}"),
        }
    }
}

/// One finding of one lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Slug of the pass that produced the finding (e.g.
    /// `"sink-reachability"`).
    pub pass: &'static str,
    /// Effective severity the finding was emitted at.
    pub level: Level,
    /// Human-readable description of the specific violation.
    pub message: String,
    /// The entities the finding points at.
    pub targets: Vec<Target>,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// `true` when this finding rejects the instance.
    pub fn is_deny(&self) -> bool {
        self.level == Level::Deny
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.level, self.pass, self.message)?;
        if !self.targets.is_empty() {
            write!(f, " (at ")?;
            for (k, t) in self.targets.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

/// `true` when any diagnostic in `diags` is deny-level.
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_deny)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn target_json(t: &Target) -> String {
    match t {
        Target::Sink(i) => format!("{{\"kind\": \"sink\", \"node\": {i}}}"),
        Target::Node(i) => format!("{{\"kind\": \"node\", \"node\": {i}}}"),
        Target::Edge(i) => format!("{{\"kind\": \"edge\", \"node\": {i}}}"),
        Target::SinkPair(i, j) => {
            format!("{{\"kind\": \"sink_pair\", \"nodes\": [{i}, {j}]}}")
        }
        Target::Row(r) => format!("{{\"kind\": \"row\", \"row\": {r}}}"),
    }
}

/// Serializes diagnostics as a self-contained JSON array (stable schema for
/// downstream tooling; mirrors the hand-rolled style of
/// `lubt_core::solution_to_json`).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (k, d) in diags.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"pass\": \"{}\", ", d.pass));
        out.push_str(&format!("\"level\": \"{}\", ", d.level));
        out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
        out.push_str("\"targets\": [");
        for (i, t) in d.targets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&target_json(t));
        }
        out.push(']');
        if let Some(h) = &d.help {
            out.push_str(&format!(", \"help\": \"{}\"", json_escape(h)));
        }
        out.push('}');
        if k + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            pass: "sink-reachability",
            level: Level::Deny,
            message: "sink s2 cannot be reached".to_string(),
            targets: vec![Target::Sink(2), Target::SinkPair(1, 2)],
            help: Some("raise u_2".to_string()),
        }
    }

    #[test]
    fn display_renders_level_pass_targets_and_help() {
        let text = sample().to_string();
        assert!(text.contains("error[sink-reachability]"));
        assert!(text.contains("s2"));
        assert!(text.contains("(s1, s2)"));
        assert!(text.contains("help: raise u_2"));
    }

    #[test]
    fn deny_detection() {
        let d = sample();
        assert!(d.is_deny());
        assert!(has_deny(std::slice::from_ref(&d)));
        let warn = Diagnostic {
            level: Level::Warn,
            ..d
        };
        assert!(!has_deny(&[warn]));
        assert!(!has_deny(&[]));
    }

    #[test]
    fn json_is_well_formed() {
        let json = diagnostics_to_json(&[sample()]);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"pass\": \"sink-reachability\""));
        assert!(json.contains("\"level\": \"error\""));
        assert!(json.contains("\"kind\": \"sink_pair\""));
        assert!(json.contains("\"help\""));
        assert_eq!(diagnostics_to_json(&[]), "[\n]");
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic {
            pass: "x",
            level: Level::Warn,
            message: "quote \" backslash \\ newline \n tab \t".to_string(),
            targets: vec![],
            help: None,
        };
        let json = diagnostics_to_json(&[d]);
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n tab \\t"));
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Deny > Level::Warn);
        assert!(Level::Warn > Level::Allow);
    }
}
