//! `model-conditioning`: numerical smells in the generated LP.
//!
//! Presolve removes *bit-identical* canonicalized rows and resolves empty
//! rows; this pass flags what slips past it or what presolve fixes only at
//! a cost: rows with no terms, duplicate rows (same sorted term list,
//! comparator and rhs), coefficient magnitudes spread over more than
//! [`MAGNITUDE_RATIO_LIMIT`] (a classic source of simplex pivot noise),
//! rows whose magnitude spread makes f64 summation absorb a coefficient
//! outright (float and exact evaluation then disagree, which the certificate
//! audit will expose), and right-hand sides beyond [`RHS_LIMIT`]. Runs only
//! when a model is attached to the [`LintInput`].

use crate::diagnostic::{Diagnostic, Level, Target};
use crate::registry::{LintInput, LintPass};
use std::collections::HashMap;

/// Max tolerated ratio between the largest and smallest nonzero coefficient
/// magnitude across the whole model.
pub const MAGNITUDE_RATIO_LIMIT: f64 = 1e8;

/// Max tolerated right-hand-side magnitude.
pub const RHS_LIMIT: f64 = 1e12;

/// See the module docs.
pub struct ModelConditioning;

/// Canonical row identity: sorted `(var, coefficient-bits)` terms, a
/// comparator tag, and the rhs bits. Bit-exact, like presolve's dedup.
type RowSignature = (Vec<(usize, u64)>, i8, u64);

impl LintPass for ModelConditioning {
    fn slug(&self) -> &'static str {
        "model-conditioning"
    }

    fn default_level(&self) -> Level {
        Level::Warn
    }

    fn description(&self) -> &'static str {
        "LP smells: empty rows, duplicate rows, mixed coefficient magnitudes, f64-absorbed coefficients, oversized right-hand sides"
    }

    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>) {
        let Some(model) = input.model else {
            return;
        };

        let mut signatures: HashMap<RowSignature, usize> = HashMap::new();
        let mut min_mag = f64::INFINITY;
        let mut max_mag: f64 = 0.0;
        let mut min_row = 0usize;
        let mut max_row = 0usize;

        for (r, c) in model.constraints().iter().enumerate() {
            if c.expr().terms().is_empty() {
                out.push(Diagnostic {
                    pass: self.slug(),
                    level,
                    message: format!(
                        "row {r} has no terms (0 {:?} {}); it is either vacuous or an \
                         infeasibility left for presolve to trip over",
                        c.cmp(),
                        c.rhs()
                    ),
                    targets: vec![Target::Row(r)],
                    help: Some("drop the row at generation time".to_string()),
                });
                continue;
            }

            let mut sig: Vec<(usize, u64)> = c
                .expr()
                .terms()
                .iter()
                .map(|&(v, coef)| (v.index(), coef.to_bits()))
                .collect();
            sig.sort_unstable();
            let cmp_tag = match c.cmp() {
                lubt_lp::Cmp::Le => -1i8,
                lubt_lp::Cmp::Eq => 0,
                lubt_lp::Cmp::Ge => 1,
            };
            match signatures.entry((sig, cmp_tag, c.rhs().to_bits())) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!("row {r} duplicates row {}", first.get()),
                        targets: vec![Target::Row(*first.get()), Target::Row(r)],
                        help: Some(
                            "the generator emitted the same constraint twice; deduplicate \
                             before presolve"
                                .to_string(),
                        ),
                    });
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(r);
                }
            }

            for &(_, coef) in c.expr().terms() {
                let mag = coef.abs();
                if mag == 0.0 {
                    continue;
                }
                if mag < min_mag {
                    min_mag = mag;
                    min_row = r;
                }
                if mag > max_mag {
                    max_mag = mag;
                    max_row = r;
                }
            }

            // Absorption: a nonzero coefficient so small next to the row's
            // largest that f64 addition swallows it whole — the solver's
            // float row sums then silently omit a term that the exact
            // rational evaluation of the `audit-*` passes still sees.
            let row_max = c
                .expr()
                .terms()
                .iter()
                .fold(0.0f64, |a, &(_, coef)| a.max(coef.abs()));
            let absorbed = c
                .expr()
                .terms()
                .iter()
                .any(|&(_, coef)| coef != 0.0 && row_max + coef == row_max);
            if absorbed {
                out.push(Diagnostic {
                    pass: self.slug(),
                    level,
                    message: format!(
                        "row {r} mixes coefficient magnitudes so unevenly that f64 \
                         summation absorbs the small ones entirely (largest magnitude \
                         {row_max:e}); float and exact evaluation of this row disagree"
                    ),
                    targets: vec![Target::Row(r)],
                    help: Some(
                        "rescale the row: the exact certificate audit recomputes it \
                         rationally and will report a residual the solver cannot see"
                            .to_string(),
                    ),
                });
            }

            if c.rhs().abs() > RHS_LIMIT {
                out.push(Diagnostic {
                    pass: self.slug(),
                    level,
                    message: format!(
                        "row {r} has right-hand side {} beyond {RHS_LIMIT:e}",
                        c.rhs()
                    ),
                    targets: vec![Target::Row(r)],
                    help: Some("rescale the instance coordinates or delay units".to_string()),
                });
            }
        }

        if max_mag > 0.0 && min_mag.is_finite() && max_mag / min_mag > MAGNITUDE_RATIO_LIMIT {
            out.push(Diagnostic {
                pass: self.slug(),
                level,
                message: format!(
                    "coefficient magnitudes span {min_mag:e} (row {min_row}) to {max_mag:e} \
                     (row {max_row}), a ratio beyond {MAGNITUDE_RATIO_LIMIT:e}"
                ),
                targets: vec![Target::Row(min_row), Target::Row(max_row)],
                help: Some(
                    "rescale variables or units; simplex pivots lose precision across such \
                     spreads"
                        .to_string(),
                ),
            });
        }
    }
}
