//! The built-in lint passes.

mod model_conditioning;
mod sink_reachability;
mod topology_shape;
mod window_conflict;
mod zero_skew;

pub use model_conditioning::ModelConditioning;
pub use sink_reachability::SinkReachability;
pub use topology_shape::TopologyShape;
pub use window_conflict::WindowConflict;
pub use zero_skew::ZeroSkewConsistency;
