//! `degenerate-topology`: shapes that are legal trees but waste LP work or
//! signal an upstream bug.
//!
//! * Steiner nodes with one child are pure pass-throughs: their edge
//!   variables can be merged with the child's (an extra LP column and row
//!   for nothing).
//! * Steiner leaves contribute no sink and no routing; they should have
//!   been pruned.
//! * Internal (non-leaf) sinks void Lemma 3.1's feasibility guarantee.
//! * Duplicate sink locations make the pairwise Steiner constraint between
//!   them vacuous and usually indicate duplicated input rows.
//! * A root with the wrong child count for the declared source mode means
//!   the topology builder and the embedder disagree about node 0.

use crate::diagnostic::{Diagnostic, Level, Target};
use crate::registry::{LintInput, LintPass};
use lubt_geom::GEOM_EPS;
use lubt_topology::{NodeId, SourceMode};

/// See the module docs.
pub struct TopologyShape;

impl LintPass for TopologyShape {
    fn slug(&self) -> &'static str {
        "degenerate-topology"
    }

    fn default_level(&self) -> Level {
        Level::Warn
    }

    fn description(&self) -> &'static str {
        "unary Steiner chains, Steiner leaves, internal sinks, duplicate sink locations, and root arity mismatching the source mode"
    }

    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>) {
        let topo = input.topology;
        for v in 0..topo.num_nodes() {
            let node = NodeId(v);
            if topo.is_steiner(node) {
                match topo.num_children(node) {
                    0 => out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!("Steiner node {v} is a leaf: it routes nothing"),
                        targets: vec![Target::Node(v)],
                        help: Some("prune the node and its edge from the topology".to_string()),
                    }),
                    1 => out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!(
                            "Steiner node {v} has a single child: a unary chain adds an LP \
                             variable and row without branching"
                        ),
                        targets: vec![Target::Node(v), Target::Edge(v)],
                        help: Some(
                            "contract the node into its child's edge before building the model"
                                .to_string(),
                        ),
                    }),
                    _ => {}
                }
            } else if topo.is_sink(node) && !topo.is_leaf(node) {
                out.push(Diagnostic {
                    pass: self.slug(),
                    level,
                    message: format!(
                        "sink {v} is an internal node; Lemma 3.1 guarantees LUBT feasibility \
                         only for leaf sinks"
                    ),
                    targets: vec![Target::Sink(v)],
                    help: Some(
                        "re-hang the subtree below a Steiner point co-located with the sink"
                            .to_string(),
                    ),
                });
            }
        }

        let expected_root_children = match input.source_mode {
            SourceMode::Given => 1,
            SourceMode::Free => 2,
        };
        let got = topo.num_children(topo.root());
        if got != expected_root_children {
            out.push(Diagnostic {
                pass: self.slug(),
                level,
                message: format!(
                    "root has {got} children but source mode {:?} expects \
                     {expected_root_children}",
                    input.source_mode
                ),
                targets: vec![Target::Node(0)],
                help: None,
            });
        }

        let m = input.sinks.len();
        for i in 0..m {
            for j in i + 1..m {
                if input.sinks[i].dist(input.sinks[j]) <= GEOM_EPS {
                    let (a, b) = (i + 1, j + 1);
                    out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!(
                            "sinks {a} and {b} share the location ({}, {})",
                            input.sinks[i].x, input.sinks[i].y
                        ),
                        targets: vec![Target::SinkPair(a, b)],
                        help: Some(
                            "merge duplicate sinks (intersect their delay windows) before \
                             building the tree"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    }
}
