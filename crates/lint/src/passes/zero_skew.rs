//! `zero-skew-consistency`: checks specific to the `l = u` regime (§4.6).
//!
//! When every window is zero-width the LUBT problem degenerates to exact
//! target-delay (zero-skew when all targets coincide) routing. Feasibility
//! then has a closed characterization: with a common target `t`, any tree
//! needs `t >= max_i dist(s_0, s_i)` (reachability) and
//! `2t >= max_{i,j} dist(s_i, s_j)` (every sink pair shares the budget of
//! the path through their merge point). The pass consolidates violations of
//! the pairwise condition into a single deny naming the minimum feasible
//! target, and — when the instance *is* consistent — emits a warn-level
//! performance hint that the §4.6 closed form solves it without the LP.

use crate::diagnostic::{Diagnostic, Level, Target};
use crate::registry::{LintInput, LintPass};
use lubt_geom::GEOM_EPS;

/// See the module docs.
pub struct ZeroSkewConsistency;

impl LintPass for ZeroSkewConsistency {
    fn slug(&self) -> &'static str {
        "zero-skew-consistency"
    }

    fn default_level(&self) -> Level {
        Level::Deny
    }

    fn description(&self) -> &'static str {
        "in the l = u regime: a common target below the closed-form minimum (deny), or LP use where the \u{a7}4.6 closed form suffices (warn)"
    }

    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>) {
        let m = input.sinks.len();
        if m == 0 {
            return;
        }
        let zero_width = input
            .lower
            .iter()
            .zip(input.upper)
            .all(|(&l, &u)| (u - l).abs() <= GEOM_EPS);
        if !zero_width {
            return;
        }
        let t = input.upper[0];
        let common_target = input.upper.iter().all(|&u| (u - t).abs() <= GEOM_EPS);
        if !common_target {
            return;
        }

        // Minimum feasible common target: half the sink diameter, and the
        // source eccentricity when the source location is given.
        let mut min_t: f64 = 0.0;
        let mut witness: Vec<Target> = Vec::new();
        for i in 0..m {
            for j in i + 1..m {
                let half = input.sinks[i].dist(input.sinks[j]) / 2.0;
                if half > min_t {
                    min_t = half;
                    witness = vec![Target::SinkPair(i + 1, j + 1)];
                }
            }
        }
        if let Some(src) = input.source {
            for (i, &s) in input.sinks.iter().enumerate() {
                let d = src.dist(s);
                if d > min_t {
                    min_t = d;
                    witness = vec![Target::Sink(i + 1)];
                }
            }
        }

        if t < min_t - GEOM_EPS {
            out.push(Diagnostic {
                pass: self.slug(),
                level,
                message: format!(
                    "zero-skew target t = {t} is below the closed-form minimum feasible \
                     target {min_t}"
                ),
                targets: witness,
                help: Some(format!(
                    "with l = u = t for every sink, feasibility requires t >= {min_t}; \
                     raise the target or widen the windows"
                )),
            });
        } else {
            // Consistent exact zero-skew: the LP is overkill.
            out.push(Diagnostic {
                pass: self.slug(),
                level: Level::Warn.min(level),
                message: format!(
                    "all {m} sinks share the exact zero-skew target t = {t}; the \u{a7}4.6 \
                     closed form solves this regime directly"
                ),
                targets: Vec::new(),
                help: Some(
                    "prefer the zero-skew construction over the LP for l = u instances".to_string(),
                ),
            });
        }
    }
}
