//! `pairwise-window-conflict`: two sinks whose upper bounds cannot both
//! hold.
//!
//! In any routing tree the tree path between sinks `s_i` and `s_j` has
//! length `delay_i + delay_j - 2 * delay(lca)` which is at most
//! `delay_i + delay_j`, and by the Steiner constraints (Theorem 4.1) it is
//! at least `dist(s_i, s_j)`. So `u_i + u_j < dist(s_i, s_j)` proves the
//! instance infeasible before any LP is built — the pairwise analogue of
//! the per-sink reachability check.

use crate::diagnostic::{Diagnostic, Level, Target};
use crate::registry::{LintInput, LintPass};
use lubt_geom::GEOM_EPS;

/// See the module docs.
pub struct WindowConflict;

impl LintPass for WindowConflict {
    fn slug(&self) -> &'static str {
        "pairwise-window-conflict"
    }

    fn default_level(&self) -> Level {
        Level::Deny
    }

    fn description(&self) -> &'static str {
        "sink pairs with u_i + u_j below their Manhattan distance, which no tree can satisfy"
    }

    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>) {
        let m = input.sinks.len();
        for i in 0..m {
            for j in i + 1..m {
                let d = input.sinks[i].dist(input.sinks[j]);
                let budget = input.upper[i] + input.upper[j];
                if budget < d - GEOM_EPS {
                    let (a, b) = (i + 1, j + 1);
                    out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!(
                            "sinks {a} and {b} conflict: u_{a} + u_{b} = {budget} is below \
                             their Manhattan distance {d}"
                        ),
                        targets: vec![Target::SinkPair(a, b)],
                        help: Some(format!(
                            "the tree path between the two sinks is at least {d} long and is \
                             bounded by the sum of their delays; raise one of the upper bounds"
                        )),
                    });
                }
            }
        }
    }
}
