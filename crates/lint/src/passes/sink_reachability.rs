//! `sink-reachability`: per-sink window sanity.
//!
//! Every source-to-sink path in any routing tree has length at least the
//! Manhattan distance `dist(s_0, s_i)`, so `u_i < dist(s_0, s_i)` makes the
//! instance infeasible regardless of topology. Likewise an inverted window
//! `l_i > u_i` admits no delay at all. Both findings are LP-free
//! infeasibility certificates, hence deny by default.

use crate::diagnostic::{Diagnostic, Level, Target};
use crate::registry::{LintInput, LintPass};
use lubt_geom::GEOM_EPS;

/// See the module docs.
pub struct SinkReachability;

impl LintPass for SinkReachability {
    fn slug(&self) -> &'static str {
        "sink-reachability"
    }

    fn default_level(&self) -> Level {
        Level::Deny
    }

    fn description(&self) -> &'static str {
        "per-sink windows that no routing tree can satisfy: u_i below the source-to-sink distance, or l_i > u_i"
    }

    fn check(&self, input: &LintInput<'_>, level: Level, out: &mut Vec<Diagnostic>) {
        for (i, (&l, &u)) in input.lower.iter().zip(input.upper).enumerate() {
            let node = i + 1;
            if l > u + GEOM_EPS {
                out.push(Diagnostic {
                    pass: self.slug(),
                    level,
                    message: format!(
                        "sink {node} has an empty delay window: l = {l} exceeds u = {u}"
                    ),
                    targets: vec![Target::Sink(node)],
                    help: Some("swap or widen the bounds so that l <= u".to_string()),
                });
            }
            if let Some(src) = input.source {
                let d = src.dist(input.sinks[i]);
                if u < d - GEOM_EPS {
                    out.push(Diagnostic {
                        pass: self.slug(),
                        level,
                        message: format!(
                            "sink {node} is unreachable: upper bound u = {u} is below the \
                             source-to-sink Manhattan distance {d}"
                        ),
                        targets: vec![Target::Sink(node)],
                        help: Some(format!("any routing tree gives sink {node} delay >= {d}; raise u to at least that")),
                    });
                }
            }
        }
    }
}
