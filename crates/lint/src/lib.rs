//! Clippy-style static analysis for LUBT instances and their EBF LP models.
//!
//! `lubt-lint` inspects a problem *without solving it*: a registry of named
//! passes walks the sink set, delay windows, topology and (optionally) the
//! generated LP, and reports structured [`Diagnostic`]s that point at node
//! indices and LP row ids. Deny-level findings are infeasibility or
//! invariant-violation certificates — `lubt_core::solve()` consults them as
//! a pre-solve hook and fails fast instead of burning simplex pivots on a
//! provably hopeless model; warn-level findings flag degenerate shapes and
//! numerical smells worth fixing upstream.
//!
//! The built-in passes:
//!
//! | slug | level | detects |
//! |------|-------|---------|
//! | `sink-reachability` | deny | `u_i < dist(s_0, s_i)` or `l_i > u_i` |
//! | `pairwise-window-conflict` | deny | `u_i + u_j < dist(s_i, s_j)` |
//! | `zero-skew-consistency` | deny | `l = u` regime: target below the §4.6 closed-form minimum; warns when the LP is used where the closed form suffices |
//! | `degenerate-topology` | warn | unary Steiner chains, Steiner leaves, internal sinks, duplicate sink locations, root arity vs source mode |
//! | `model-conditioning` | warn | empty/duplicate LP rows beyond presolve, mixed coefficient magnitudes, f64-absorbed coefficients, oversized right-hand sides |
//!
//! This crate deliberately sits *below* `lubt-core` in the dependency
//! graph: passes consume a borrowed [`LintInput`] view (raw slices plus an
//! optional [`lubt_lp::Model`]) so that core can depend on the linter, not
//! the other way around.
//!
//! # Example
//!
//! ```
//! use lubt_geom::Point;
//! use lubt_lint::{lint, has_deny, LintInput};
//! use lubt_topology::{SourceMode, Topology};
//!
//! // Two sinks 8 apart, but the upper bounds only budget 3 + 3 = 6 of
//! // path length between them: provably infeasible, no LP needed.
//! let sinks = [Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
//! let topology = Topology::from_parents(2, &[0, 3, 3, 0]).unwrap();
//! let diags = lint(&LintInput {
//!     sinks: &sinks,
//!     source: Some(Point::new(4.0, 0.0)),
//!     topology: &topology,
//!     source_mode: SourceMode::Given,
//!     lower: &[0.0, 0.0],
//!     upper: &[3.0, 3.0],
//!     model: None,
//! });
//! assert!(has_deny(&diags));
//! assert!(diags.iter().any(|d| d.pass == "pairwise-window-conflict"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
pub mod passes;
mod registry;

pub use diagnostic::{diagnostics_to_json, has_deny, Diagnostic, Level, Target};
pub use registry::{lint, LintInput, LintPass, LintRegistry};
