//! Positive (pass fires) and negative (pass stays silent) coverage for each
//! built-in lint pass, plus registry-level behavior.

use lubt_geom::Point;
use lubt_lint::{has_deny, lint, Diagnostic, Level, LintInput, LintRegistry, Target};
use lubt_lp::{Cmp, LinExpr, Model};
use lubt_topology::{bipartition_topology, SourceMode, Topology};

/// Two sinks under one Steiner point, root in `Given` mode — the smallest
/// clean binary topology.
fn clean_topology() -> Topology {
    Topology::from_parents(2, &[0, 3, 3, 0]).unwrap()
}

fn clean_sinks() -> [Point; 2] {
    [Point::new(0.0, 0.0), Point::new(8.0, 0.0)]
}

/// A feasible, well-shaped two-sink instance; the baseline every negative
/// test perturbs.
fn input<'a>(
    sinks: &'a [Point],
    topology: &'a Topology,
    lower: &'a [f64],
    upper: &'a [f64],
) -> LintInput<'a> {
    LintInput {
        sinks,
        source: Some(Point::new(4.0, 0.0)),
        topology,
        source_mode: SourceMode::Given,
        lower,
        upper,
        model: None,
    }
}

fn diags_of<'d>(diags: &'d [Diagnostic], pass: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.pass == pass).collect()
}

// --- sink-reachability ---------------------------------------------------

#[test]
fn reachability_fires_on_upper_below_source_distance() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    // dist(source, s1) = 4 but u_1 = 3.
    let diags = lint(&input(&sinks, &topo, &[0.0, 0.0], &[3.0, 10.0]));
    let hits = diags_of(&diags, "sink-reachability");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Deny);
    assert_eq!(hits[0].targets, vec![Target::Sink(1)]);
}

#[test]
fn reachability_fires_on_inverted_window() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[0.0, 9.0], &[10.0, 7.0]));
    let hits = diags_of(&diags, "sink-reachability");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("empty delay window"));
    assert_eq!(hits[0].targets, vec![Target::Sink(2)]);
}

#[test]
fn reachability_silent_on_feasible_windows() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]));
    assert!(diags_of(&diags, "sink-reachability").is_empty());
}

#[test]
fn reachability_skips_distance_check_without_source() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[0.5, 10.0]);
    inp.source = None;
    inp.source_mode = SourceMode::Free;
    // u_1 = 0.5 would be unreachable from any plausible source, but with the
    // source free there is no distance to check against.
    let diags = lint(&inp);
    assert!(diags_of(&diags, "sink-reachability").is_empty());
}

// --- pairwise-window-conflict -------------------------------------------

#[test]
fn window_conflict_fires_when_budgets_cannot_cover_distance() {
    // With a *given* source the triangle inequality makes every pairwise
    // conflict also a per-sink one, so the pass earns its keep in free-source
    // mode: dist(s1, s2) = 8 but u_1 + u_2 = 4 + 3.5 = 7.5, and there is no
    // source distance for sink-reachability to check.
    let sinks = clean_sinks();
    let topo = Topology::from_parents(2, &[0, 0, 0]).unwrap();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[4.0, 3.5]);
    inp.source = None;
    inp.source_mode = SourceMode::Free;
    let diags = lint(&inp);
    let hits = diags_of(&diags, "pairwise-window-conflict");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Deny);
    assert_eq!(hits[0].targets, vec![Target::SinkPair(1, 2)]);
    assert!(diags_of(&diags, "sink-reachability").is_empty());
}

#[test]
fn window_conflict_silent_when_budgets_suffice() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[0.0, 0.0], &[4.0, 4.0]));
    assert!(diags_of(&diags, "pairwise-window-conflict").is_empty());
}

// --- zero-skew-consistency ----------------------------------------------

#[test]
fn zero_skew_denies_target_below_closed_form_minimum() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    // l = u = 3 for both sinks; the minimum feasible common target is 4
    // (source eccentricity and half the sink diameter).
    let diags = lint(&input(&sinks, &topo, &[3.0, 3.0], &[3.0, 3.0]));
    let hits = diags_of(&diags, "zero-skew-consistency");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Deny);
    assert!(hits[0].message.contains("minimum feasible"));
}

#[test]
fn zero_skew_hints_closed_form_on_consistent_instance() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[5.0, 5.0], &[5.0, 5.0]));
    let hits = diags_of(&diags, "zero-skew-consistency");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Warn);
    assert!(hits[0].message.contains("closed form"));
    assert!(!has_deny(&diags));
}

#[test]
fn zero_skew_silent_on_wide_windows() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]));
    assert!(diags_of(&diags, "zero-skew-consistency").is_empty());
}

#[test]
fn zero_skew_silent_on_distinct_targets() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    // Zero-width but different per-sink targets: not the common-target
    // regime the consolidated check covers.
    let diags = lint(&input(&sinks, &topo, &[4.0, 6.0], &[4.0, 6.0]));
    assert!(diags_of(&diags, "zero-skew-consistency").is_empty());
}

// --- degenerate-topology ------------------------------------------------

#[test]
fn topology_shape_fires_on_unary_steiner_chain() {
    let sinks = [Point::new(1.0, 1.0)];
    // 0 -> 2 -> 1: Steiner node 2 has a single child.
    let topo = Topology::from_parents(1, &[0, 2, 0]).unwrap();
    let mut inp = input(&sinks, &topo, &[0.0], &[100.0]);
    inp.source = Some(Point::new(0.0, 0.0));
    let diags = lint(&inp);
    let hits = diags_of(&diags, "degenerate-topology");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Warn);
    assert!(hits[0].message.contains("single child"));
    assert!(hits[0].targets.contains(&Target::Node(2)));
}

#[test]
fn topology_shape_fires_on_steiner_leaf_and_root_arity() {
    let sinks = [Point::new(1.0, 1.0)];
    // Root has two children in Given mode; Steiner node 2 is a leaf.
    let topo = Topology::from_parents(1, &[0, 0, 0]).unwrap();
    let mut inp = input(&sinks, &topo, &[0.0], &[100.0]);
    inp.source = Some(Point::new(0.0, 0.0));
    let diags = lint(&inp);
    let hits = diags_of(&diags, "degenerate-topology");
    assert!(hits.iter().any(|d| d.message.contains("leaf")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("root has 2 children")));
}

#[test]
fn topology_shape_fires_on_internal_sink() {
    let sinks = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
    // Sink 2 hangs below sink 1.
    let topo = Topology::from_parents(2, &[0, 0, 1]).unwrap();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[100.0, 100.0]);
    inp.source = Some(Point::new(0.0, 0.0));
    let diags = lint(&inp);
    let hits = diags_of(&diags, "degenerate-topology");
    assert!(hits
        .iter()
        .any(|d| d.message.contains("internal node") && d.targets == vec![Target::Sink(1)]));
}

#[test]
fn topology_shape_fires_on_duplicate_sink_locations() {
    let sinks = [Point::new(3.0, 3.0), Point::new(3.0, 3.0)];
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[100.0, 100.0]);
    inp.source = Some(Point::new(0.0, 0.0));
    let diags = lint(&inp);
    let hits = diags_of(&diags, "degenerate-topology");
    assert!(hits
        .iter()
        .any(|d| d.message.contains("share the location")
            && d.targets == vec![Target::SinkPair(1, 2)]));
}

#[test]
fn topology_shape_silent_on_clean_binary_tree() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let diags = lint(&input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]));
    assert!(diags_of(&diags, "degenerate-topology").is_empty());
}

// --- model-conditioning -------------------------------------------------

fn two_var_model() -> (Model, lubt_lp::Var, lubt_lp::Var) {
    let mut m = Model::new();
    let x = m.add_var(0.0, 1.0);
    let y = m.add_var(0.0, 1.0);
    (m, x, y)
}

#[test]
fn model_conditioning_fires_on_empty_and_duplicate_rows() {
    let (mut model, x, y) = two_var_model();
    model.add_constraint(LinExpr::new(), Cmp::Ge, 3.0);
    let row = LinExpr::new().with_term(x, 1.0).with_term(y, 1.0);
    model.add_constraint(row.clone(), Cmp::Ge, 2.0);
    model.add_constraint(row, Cmp::Ge, 2.0);
    let sinks = clean_sinks();
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]);
    inp.model = Some(&model);
    let diags = lint(&inp);
    let hits = diags_of(&diags, "model-conditioning");
    assert!(hits
        .iter()
        .any(|d| d.message.contains("no terms") && d.targets == vec![Target::Row(0)]));
    assert!(hits.iter().any(|d| d.message.contains("duplicates row")
        && d.targets == vec![Target::Row(1), Target::Row(2)]));
}

#[test]
fn model_conditioning_fires_on_magnitude_spread_and_huge_rhs() {
    let (mut model, x, y) = two_var_model();
    model.add_constraint(LinExpr::new().with_term(x, 1e-5), Cmp::Ge, 1.0);
    model.add_constraint(LinExpr::new().with_term(y, 1e5), Cmp::Le, 1e13);
    let sinks = clean_sinks();
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]);
    inp.model = Some(&model);
    let diags = lint(&inp);
    let hits = diags_of(&diags, "model-conditioning");
    assert!(hits
        .iter()
        .any(|d| d.message.contains("coefficient magnitudes span")));
    assert!(hits.iter().any(|d| d.message.contains("right-hand side")));
}

#[test]
fn model_conditioning_flags_only_rows_that_absorb_a_coefficient() {
    let (mut model, x, y) = two_var_model();
    // 1e17 + 1.0 == 1e17 in f64: the y term vanishes from any float row sum.
    model.add_constraint(
        LinExpr::new().with_term(x, 1e17).with_term(y, 1.0),
        Cmp::Ge,
        1.0,
    );
    // 1e8 + 1.0 is still exact; spread alone is not absorption.
    model.add_constraint(
        LinExpr::new().with_term(x, 1e8).with_term(y, 1.0),
        Cmp::Ge,
        1.0,
    );
    let sinks = clean_sinks();
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]);
    inp.model = Some(&model);
    let diags = lint(&inp);
    let hits = diags_of(&diags, "model-conditioning");
    let absorbed: Vec<_> = hits
        .iter()
        .filter(|d| d.message.contains("absorbs"))
        .collect();
    assert_eq!(absorbed.len(), 1);
    assert_eq!(absorbed[0].targets, vec![Target::Row(0)]);
}

#[test]
fn model_conditioning_silent_on_clean_model_and_without_model() {
    let (mut model, x, y) = two_var_model();
    model.add_constraint(
        LinExpr::new().with_term(x, 1.0).with_term(y, 1.0),
        Cmp::Ge,
        2.0,
    );
    model.add_constraint(LinExpr::new().with_term(x, 1.0), Cmp::Le, 5.0);
    let sinks = clean_sinks();
    let topo = clean_topology();
    let mut inp = input(&sinks, &topo, &[0.0, 0.0], &[10.0, 10.0]);
    inp.model = Some(&model);
    assert!(diags_of(&lint(&inp), "model-conditioning").is_empty());
    inp.model = None;
    assert!(diags_of(&lint(&inp), "model-conditioning").is_empty());
}

// --- registry behavior ---------------------------------------------------

#[test]
fn allow_override_silences_a_pass() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let inp = input(&sinks, &topo, &[0.0, 0.0], &[3.0, 10.0]);
    assert!(has_deny(&lint(&inp)));
    let mut registry = LintRegistry::default();
    registry.set_level("sink-reachability", Level::Allow);
    assert!(registry.run(&inp).is_empty());
}

#[test]
fn warn_override_downgrades_a_deny_pass() {
    let sinks = clean_sinks();
    let topo = clean_topology();
    let inp = input(&sinks, &topo, &[0.0, 0.0], &[3.0, 10.0]);
    let mut registry = LintRegistry::default();
    registry.set_level("sink-reachability", Level::Warn);
    let diags = registry.run(&inp);
    let hits = diags_of(&diags, "sink-reachability");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].level, Level::Warn);
    assert!(!has_deny(&diags));
}

#[test]
fn describe_lists_all_builtin_passes_in_run_order() {
    let registry = LintRegistry::default();
    let slugs: Vec<&str> = registry.describe().iter().map(|(s, _, _)| *s).collect();
    assert_eq!(
        slugs,
        vec![
            "sink-reachability",
            "pairwise-window-conflict",
            "zero-skew-consistency",
            "degenerate-topology",
            "model-conditioning",
        ]
    );
}

// --- realistic instances stay clean --------------------------------------

#[test]
fn table1_style_synthetic_instances_lint_clean() {
    for (name, inst) in [
        ("prim1", lubt_data::synthetic::prim1()),
        (
            "uniform",
            lubt_data::synthetic::uniform("u64", 64, 1000.0, 42),
        ),
    ] {
        let topo = bipartition_topology(&inst.sinks, SourceMode::Given);
        let r = inst.radius();
        let lower = vec![0.0; inst.sinks.len()];
        let upper = vec![2.5 * r; inst.sinks.len()];
        let diags = lint(&LintInput {
            sinks: &inst.sinks,
            source: inst.source,
            topology: &topo,
            source_mode: SourceMode::Given,
            lower: &lower,
            upper: &upper,
            model: None,
        });
        assert!(
            diags.is_empty(),
            "expected no lint findings on {name}, got: {diags:?}"
        );
    }
}
