//! Prometheus text-format helpers shared by [`crate::SolveTrace`] and
//! [`crate::AggregateTrace`].
//!
//! Naming convention (DESIGN.md §11): every dotted recorder key maps to
//! one metric family `lubt_<key with non-alphanumerics → '_'>` plus a
//! kind suffix — counters get `_total`, running maxima `_max`, phase
//! timers `_seconds_total` (converted from nanoseconds), per-solve
//! histograms `_per_solve`. The original dotted key is preserved in the
//! `# HELP` line so dashboards can be traced back to DESIGN.md's key
//! tables.

/// Maps a dotted recorder key to a Prometheus metric name body:
/// `lubt_` + the key with every non-`[a-zA-Z0-9_]` byte replaced by `_`
/// (a leading digit additionally gets a `_` prefix).
pub fn metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 5);
    out.push_str("lubt_");
    for (i, c) in key.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an `f64` sample value the way the exposition format expects:
/// non-finite values become the `NaN` / `+Inf` / `-Inf` tokens Prometheus
/// defines (unlike JSON, the text format has them).
pub fn sample_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

/// Appends one single-sample metric family (`HELP` + `TYPE` + sample).
pub(crate) fn push_sample(out: &mut String, name: &str, mtype: &str, help: &str, value: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {mtype}\n{name} {value}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("simplex.pivots"), "lubt_simplex_pivots");
        assert_eq!(metric_name("par.worker3.steals"), "lubt_par_worker3_steals");
        assert_eq!(metric_name("weird key/x"), "lubt_weird_key_x");
        assert_eq!(metric_name("9lives"), "lubt__9lives");
    }

    #[test]
    fn non_finite_samples_use_prometheus_tokens() {
        assert_eq!(sample_f64(f64::NAN), "NaN");
        assert_eq!(sample_f64(f64::INFINITY), "+Inf");
        assert_eq!(sample_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(sample_f64(1.5), "1.5");
    }
}
