//! Prometheus text-format helpers shared by [`crate::SolveTrace`] and
//! [`crate::AggregateTrace`].
//!
//! Naming convention (DESIGN.md §11): every dotted recorder key maps to
//! one metric family `lubt_<key with non-alphanumerics → '_'>` plus a
//! kind suffix — counters get `_total`, running maxima `_max`, phase
//! timers `_seconds_total` (converted from nanoseconds), per-solve
//! histograms `_per_solve`. The original dotted key is preserved in the
//! `# HELP` line so dashboards can be traced back to DESIGN.md's key
//! tables.

/// Maps a dotted recorder key to a Prometheus metric name body:
/// `lubt_` + the key with every non-`[a-zA-Z0-9_]` byte replaced by `_`
/// (a leading digit additionally gets a `_` prefix).
pub fn metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 5);
    out.push_str("lubt_");
    for (i, c) in key.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an `f64` sample value the way the exposition format expects:
/// non-finite values become the `NaN` / `+Inf` / `-Inf` tokens Prometheus
/// defines (unlike JSON, the text format has them).
pub fn sample_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

/// Escapes free text for a `# HELP` line. The exposition format defines
/// exactly two escapes there — `\\` for a backslash and `\n` for a line
/// feed — and everything else is verbatim. (JSON-style escaping is wrong
/// here: `\"` and `\t` are not recognized and would surface literally in
/// Prometheus.)
pub fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends one single-sample metric family (`HELP` + `TYPE` + sample).
/// `help` is free text; it is escaped here, so callers pass it raw.
pub(crate) fn push_sample(out: &mut String, name: &str, mtype: &str, help: &str, value: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {mtype}\n{name} {value}\n",
        help = help_escape(help)
    ));
}

/// `true` when `s` is a legal metric-family name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn legal_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` when `s` is a legal label name (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn legal_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Lints a text-format exposition against the Prometheus 0.0.4 grammar:
/// every `HELP`/`TYPE` family name and every sample name must be legal,
/// `TYPE` values must be known, no family may be declared twice, label
/// names must be legal and label values must use only the defined
/// escapes (`\\`, `\"`, `\n`), sample values must parse, and every
/// sample must belong to a declared family (histogram samples may use
/// the `_bucket`/`_sum`/`_count` suffixes).
///
/// This is the gate behind the live `/metrics` endpoint: the test suite
/// runs every emitted document through it, so a recorder key that
/// sanitizes into an illegal or colliding family name fails in CI rather
/// than in the scraper.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: Vec<String> = Vec::new();
    let fail = |n: usize, msg: String| Err(format!("exposition line {n}: {msg}"));
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !legal_metric_name(name) {
                return fail(n, format!("illegal family name in HELP: {name:?}"));
            }
            if helps.iter().any(|h| h == name) {
                return fail(n, format!("family {name} declared HELP twice"));
            }
            helps.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, ty)) = rest.split_once(' ') else {
                return fail(n, "TYPE line without a type".to_string());
            };
            if !legal_metric_name(name) {
                return fail(n, format!("illegal family name in TYPE: {name:?}"));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return fail(n, format!("unknown metric type {ty:?} for {name}"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return fail(n, format!("family {name} declared TYPE twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        // Sample line: `name[{labels}] value [timestamp]`.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !legal_metric_name(name) {
            return fail(n, format!("illegal sample name: {name:?}"));
        }
        let mut rest = &line[name_end..];
        if let Some(inner) = rest.strip_prefix('{') {
            let mut chars = inner.char_indices();
            let mut labels_end = None;
            'outer: while let Some((i, c)) = chars.next() {
                match c {
                    '}' => {
                        labels_end = Some(i);
                        break 'outer;
                    }
                    '"' => {
                        // Skip the quoted label value, checking escapes.
                        while let Some((_, c)) = chars.next() {
                            match c {
                                '"' => continue 'outer,
                                '\\' => match chars.next() {
                                    Some((_, '\\' | '"' | 'n')) => {}
                                    other => {
                                        return fail(
                                            n,
                                            format!("bad escape in label value: {other:?}"),
                                        )
                                    }
                                },
                                _ => {}
                            }
                        }
                        return fail(n, "unterminated label value".to_string());
                    }
                    _ => {}
                }
            }
            let Some(labels_end) = labels_end else {
                return fail(n, "unterminated label set".to_string());
            };
            for pair in inner[..labels_end].split(',').filter(|p| !p.is_empty()) {
                let Some((lname, lvalue)) = pair.split_once('=') else {
                    return fail(n, format!("label without `=`: {pair:?}"));
                };
                if !legal_label_name(lname) {
                    return fail(n, format!("illegal label name: {lname:?}"));
                }
                if !(lvalue.starts_with('"') && lvalue.ends_with('"') && lvalue.len() >= 2) {
                    return fail(n, format!("unquoted label value: {lvalue:?}"));
                }
            }
            rest = &inner[labels_end + 1..];
        }
        let mut parts = rest.split_whitespace();
        let Some(value) = parts.next() else {
            return fail(n, format!("sample {name} has no value"));
        };
        if value.parse::<f64>().is_err() {
            return fail(n, format!("unparseable sample value {value:?} for {name}"));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return fail(n, format!("unparseable timestamp {ts:?} for {name}"));
            }
        }
        // The sample must belong to a declared family.
        let family_ok = types.contains_key(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
            });
        if !family_ok {
            return fail(n, format!("sample {name} has no TYPE declaration"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("simplex.pivots"), "lubt_simplex_pivots");
        assert_eq!(metric_name("par.worker3.steals"), "lubt_par_worker3_steals");
        assert_eq!(metric_name("weird key/x"), "lubt_weird_key_x");
        assert_eq!(metric_name("9lives"), "lubt__9lives");
    }

    #[test]
    fn non_finite_samples_use_prometheus_tokens() {
        assert_eq!(sample_f64(f64::NAN), "NaN");
        assert_eq!(sample_f64(f64::INFINITY), "+Inf");
        assert_eq!(sample_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(sample_f64(1.5), "1.5");
    }

    #[test]
    fn help_escaping_uses_exposition_rules_not_json() {
        // Only `\\` and `\n` are defined for HELP text; quotes and tabs
        // pass through verbatim (json_escape would mangle both).
        assert_eq!(help_escape("a\\b"), "a\\\\b");
        assert_eq!(help_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(help_escape("quote\" tab\t"), "quote\" tab\t");
    }

    #[test]
    fn sanitized_names_are_always_legal_families() {
        for key in [
            "time.dp",
            "iteration-limit",
            "par.worker3.steals",
            "9lives",
            "weird key/x",
            "ünïcode.key",
            "",
        ] {
            let name = metric_name(key);
            assert!(legal_metric_name(&name), "{key:?} -> illegal {name:?}");
        }
    }

    #[test]
    fn lint_accepts_what_push_sample_emits() {
        let mut out = String::new();
        push_sample(&mut out, "lubt_x_total", "counter", "Counter \"x\"", "3");
        push_sample(
            &mut out,
            "lubt_y",
            "gauge",
            "with\nnewline and back\\slash",
            "NaN",
        );
        out.push_str("# TYPE lubt_extra untyped\n");
        out.push_str("lubt_extra{le=\"+Inf\",q=\"a\\\"b\"} +Inf 1700000000\n");
        lint_exposition(&out).unwrap();
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        for (doc, why) in [
            ("# TYPE 9bad counter\n", "leading-digit family"),
            (
                "# TYPE lubt_x counter\n# TYPE lubt_x counter\n",
                "duplicate TYPE",
            ),
            ("# TYPE lubt_x widget\n", "unknown type"),
            ("# TYPE lubt_x counter\nlubt_x oops\n", "unparseable value"),
            ("lubt_x 1\n", "sample without TYPE"),
            (
                "# TYPE lubt_x counter\nlubt_x{9q=\"v\"} 1\n",
                "illegal label name",
            ),
            (
                "# TYPE lubt_x counter\nlubt_x{q=\"\\t\"} 1\n",
                "bad label escape",
            ),
            (
                "# TYPE lubt_x counter\nlubt_x{q=\"v\" 1\n",
                "unterminated labels",
            ),
            ("# HELP lubt_x a\n# HELP lubt_x b\n", "duplicate HELP"),
        ] {
            assert!(
                lint_exposition(doc).is_err(),
                "lint accepted {why}: {doc:?}"
            );
        }
    }
}
