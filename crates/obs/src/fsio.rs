//! Atomic artifact writing.
//!
//! Every file the workspace emits for later machine consumption — trace
//! JSON, batch metrics, Prometheus dumps, `BENCH_*.json` documents — used
//! to be written with a bare `std::fs::write`. A crash (or a full disk)
//! mid-write leaves a torn, unparseable file in place, which then fails
//! the `lubt report` gate with a confusing JSON error far from the real
//! cause. [`write_atomic`] closes that window: the bytes go to a
//! temporary file in the *same directory* (same filesystem, so the rename
//! is atomic) and the destination name only ever points at a complete
//! document.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Sibling temp path for `path`: `<file_name>.tmp.<pid>` in the same
/// directory, so the final `rename` never crosses a filesystem boundary.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, flush, then rename over the destination.
///
/// Readers of `path` observe either the previous complete file or the new
/// complete file — never a prefix. On any error the temp file is removed
/// and the destination is left untouched.
///
/// # Errors
///
/// Propagates the underlying I/O error (create, write, sync, or rename).
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        // Flush to disk before the rename publishes the name, so a crash
        // after the rename cannot surface an empty-but-renamed file.
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// An append-only, line-oriented log file — the machinery behind
/// `lubt serve --access-log`.
///
/// [`write_atomic`] is the wrong shape for a log: a rename-replace per
/// request would rewrite the whole file each time. A `LineLog` instead
/// holds one append-mode handle behind a mutex and writes each record as
/// a single `write_all` of `line + '\n'`, flushed immediately. Whole-line
/// writes under the lock mean concurrent workers never interleave bytes
/// *within* a line, so a `tail -f`/JSON-lines consumer always sees
/// complete records; crash safety is per-line (the last line may be
/// torn, never an earlier one).
#[derive(Debug)]
pub struct LineLog {
    file: Mutex<fs::File>,
}

impl LineLog {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/create error.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(LineLog {
            file: Mutex::new(file),
        })
    }

    /// Appends `line` (a trailing newline is added; embedded newlines are
    /// the caller's bug) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_line(&self, line: &str) -> io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(buf.as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lubt_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp_behind() {
        let dir = tmp_dir("basic");
        let target = dir.join("out.json");
        write_atomic(&target, "{\"a\": 1}").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "{\"a\": 1}");
        write_atomic(&target, "{\"a\": 2}").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "{\"a\": 2}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_the_previous_file_untouched() {
        let dir = tmp_dir("fail");
        let target = dir.join("out.json");
        write_atomic(&target, "original").unwrap();
        // Simulate the crash-mid-write that motivated this module: the
        // writer dies after producing a partial temp file. Model it by
        // pointing the write at a destination whose parent is missing —
        // the temp create fails, and the original must survive.
        let bad = dir.join("no_such_dir").join("out.json");
        assert!(write_atomic(&bad, "partial").is_err());
        assert_eq!(fs::read_to_string(&target).unwrap(), "original");
        // A stale temp file from a crashed previous process is ignored
        // and harmless: the next atomic write replaces it and the
        // destination still only ever holds complete content.
        fs::write(tmp_sibling(&target), "torn partial conte").unwrap();
        write_atomic(&target, "replacement").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "replacement");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn line_log_appends_across_reopens_and_threads() {
        let dir = tmp_dir("linelog");
        let target = dir.join("access.jsonl");
        {
            let log = LineLog::append_to(&target).unwrap();
            log.write_line("{\"req\": 0}").unwrap();
        }
        let log = Arc::new(LineLog::append_to(&target).unwrap());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..50 {
                        log.write_line(&format!("{{\"w\": {w}, \"i\": {i}}}"))
                            .unwrap();
                    }
                });
            }
        });
        let text = fs::read_to_string(&target).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 201, "reopen kept the first line and added 200");
        assert_eq!(lines[0], "{\"req\": 0}");
        // Whole-line writes: every record parses on its own.
        for line in &lines {
            crate::json::validate(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readers_never_observe_a_partial_document() {
        // A writer thread alternates two full documents through
        // write_atomic while a reader polls the path: every successful
        // read must be one of the two complete documents, never a torn
        // prefix or mixture. With plain fs::write this fails readily.
        let dir = tmp_dir("race");
        let target = dir.join("live.json");
        let doc_a = format!("{{\"doc\": \"a\", \"pad\": \"{}\"}}", "x".repeat(64 * 1024));
        let doc_b = format!("{{\"doc\": \"b\", \"pad\": \"{}\"}}", "y".repeat(64 * 1024));
        write_atomic(&target, &doc_a).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writer_stop = Arc::clone(&stop);
            let (target_w, a, b) = (target.clone(), doc_a.clone(), doc_b.clone());
            scope.spawn(move || {
                for i in 0..200 {
                    let doc = if i % 2 == 0 { &b } else { &a };
                    write_atomic(&target_w, doc).unwrap();
                }
                writer_stop.store(true, Ordering::Release);
            });
            let mut reads = 0u32;
            while !stop.load(Ordering::Acquire) {
                let seen = fs::read_to_string(&target).unwrap();
                assert!(
                    seen == doc_a || seen == doc_b,
                    "observed a torn document of {} bytes",
                    seen.len()
                );
                reads += 1;
            }
            assert!(reads > 0);
        });
        fs::remove_dir_all(&dir).unwrap();
    }
}
