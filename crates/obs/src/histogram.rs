//! [`Histogram`]: a deterministic log-bucketed distribution summary.
//!
//! The aggregation layer folds one counter value per solve into a
//! histogram so a benchmark file can report "p50/p99 simplex pivots per
//! instance" without storing every sample. Buckets are powers of two
//! (bucket `b` holds the values whose bit length is `b`, bucket 0 holds
//! exactly `0`), so recording is a shift-free bit-length computation, the
//! bucket layout is identical on every platform and thread count, and
//! [`Histogram::merge`] is a plain component-wise sum — commutative and
//! associative, which is what makes aggregate traces independent of the
//! order instances finish in.

use crate::prometheus::help_escape;

/// Number of buckets: bit lengths `0..=64`.
const BUCKETS: usize = 65;

/// Deterministic log₂-bucketed histogram over `u64` samples.
///
/// # Example
///
/// ```
/// use lubt_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(100));
/// assert!(h.percentile(0.5).unwrap() <= h.percentile(0.99).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[b]` counts samples with bit length `b` (i.e. in
    /// `[2^(b-1), 2^b - 1]`; bucket 0 counts exact zeros).
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket `value` falls into (its bit length).
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `b`.
    fn bucket_upper(b: usize) -> u64 {
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample. Counts saturate at `u64::MAX` instead of
    /// wrapping (matching `sum`), so a hostile or pathological feed can
    /// never make `count` disagree with the buckets via overflow.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(bit_length, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Cumulative count of samples in buckets `0..=b` (saturating, so a
    /// histogram whose buckets pinned at `u64::MAX` still sums safely).
    pub fn cumulative_le(&self, b: usize) -> u64 {
        self.buckets[..=b.min(BUCKETS - 1)]
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// The `q`-quantile as the upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` sample, clamped into `[min, max]` so
    /// `percentile(0.0) == min()` and `percentile(1.0) == max()`.
    ///
    /// Out-of-range `q` is handled explicitly: finite and infinite `q`
    /// are clamped to `[0, 1]`, while `NaN` (which orders with nothing,
    /// so it would otherwise fall through every comparison and silently
    /// act like a small quantile) is rejected with `None`. Also `None`
    /// when empty.
    ///
    /// Deterministic (pure bucket arithmetic) and monotone in `q`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The boundary quantiles are exact, not bucket-resolution: the
        // extremes are tracked precisely, and bucket-upper rounding would
        // otherwise report `percentile(0.0) > min` whenever the smallest
        // sample sits strictly inside its bucket.
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // `as u64` saturates, and rank is re-clamped into [1, count], so
        // counts near u64::MAX cannot push the rank past the last sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(Self::bucket_upper(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Adds every sample of `other` into `self`.
    ///
    /// Component-wise sums and min/max, so for any histograms `a ⊕ b = b
    /// ⊕ a` and `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`: aggregation cannot observe
    /// the order solves completed in. All counts saturate at `u64::MAX`
    /// (saturation is itself commutative and associative, so the merge
    /// laws survive even at the ceiling).
    pub fn merge(&mut self, other: &Histogram) {
        for (slot, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes the histogram as one strict-JSON object: exact summary
    /// statistics, the standard quantiles, and the non-empty buckets as
    /// `[bit_length, count]` pairs.
    pub fn to_json(&self) -> String {
        let quantile = |q: f64| match self.percentile(q) {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(b, c)| format!("[{b}, {c}]"))
            .collect();
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            self.count,
            self.sum,
            opt(self.min()),
            opt(self.max()),
            quantile(0.50),
            quantile(0.90),
            quantile(0.99),
            buckets.join(", ")
        )
    }

    /// Appends this histogram to a Prometheus exposition under metric
    /// `name` (cumulative `_bucket{le=...}` series plus `_sum`/`_count`,
    /// the classic histogram type).
    pub(crate) fn push_prometheus(&self, out: &mut String, name: &str, help_key: &str) {
        out.push_str(&format!(
            "# HELP {name} Per-solve distribution of \"{}\"\n# TYPE {name} histogram\n",
            help_escape(help_key)
        ));
        for (b, _) in self.nonzero_buckets() {
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {}\n",
                Self::bucket_upper(b),
                self.cumulative_le(b)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.count));
        out.push_str(&format!("{name}_sum {}\n", self.sum));
        out.push_str(&format!("{name}_count {}\n", self.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.5), None);
        validate(&h.to_json()).unwrap();
        assert!(h.to_json().contains("\"min\": null"));
    }

    #[test]
    fn bucketing_follows_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn percentiles_hit_exact_extremes_and_stay_monotone() {
        let mut h = Histogram::new();
        for v in [3, 9, 17, 1000, 0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(1.0), Some(1000));
        let mut last = 0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0).unwrap();
            assert!(p >= last, "percentile dipped at q={i}%");
            last = p;
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [5u64, 0, 123, 9, 9, 1 << 40, 77];
        let mut all = Histogram::new();
        for v in samples {
            all.record(v);
        }
        let (left, right) = samples.split_at(3);
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        left.iter().for_each(|&v| a.record(v));
        right.iter().for_each(|&v| b.record(v));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, all);
    }

    #[test]
    fn json_is_strict_and_carries_buckets() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let doc = h.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid histogram JSON: {e}\n{doc}"));
        assert!(doc.contains("\"count\": 4"));
        assert!(doc.contains("\"sum\": 106"));
        assert!(doc.contains("[7, 1]"), "100 has bit length 7: {doc}");
    }

    #[test]
    fn percentile_handles_nonfinite_and_out_of_range_q() {
        let mut h = Histogram::new();
        for v in [3, 9, 17, 1000, 0] {
            h.record(v);
        }
        // Regression: NaN used to fall through the comparisons and come
        // back as roughly the minimum; it is now rejected explicitly.
        assert_eq!(h.percentile(f64::NAN), None);
        // Infinities and out-of-range finite values clamp to the extremes.
        assert_eq!(h.percentile(f64::NEG_INFINITY), h.percentile(0.0));
        assert_eq!(h.percentile(f64::INFINITY), h.percentile(1.0));
        assert_eq!(h.percentile(-7.5), h.percentile(0.0));
        assert_eq!(h.percentile(42.0), h.percentile(1.0));
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        // Merge two histograms whose counts are already at the ceiling:
        // the old `+=` would wrap (panicking in debug builds); saturating
        // arithmetic pins everything at u64::MAX and keeps the merge laws.
        let mut a = Histogram::new();
        a.record(5);
        a.count = u64::MAX;
        a.buckets[Histogram::bucket_of(5)] = u64::MAX;
        a.sum = u64::MAX;
        let b = a.clone();
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.count(), u64::MAX);
        assert_eq!(ab.sum(), u64::MAX);
        assert_eq!(ab.cumulative_le(64), u64::MAX);
        // Percentiles stay total and in range at the ceiling.
        assert_eq!(ab.percentile(0.5), Some(5));
        assert_eq!(ab.percentile(1.0), Some(5));
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "saturating merge stays commutative");
        // record() at the ceiling also saturates.
        let mut c = ab.clone();
        c.record(5);
        assert_eq!(c.count(), u64::MAX);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let mut out = String::new();
        h.push_prometheus(&mut out, "lubt_demo_pivots", "demo.pivots");
        assert!(out.contains("# TYPE lubt_demo_pivots histogram"));
        assert!(out.contains("lubt_demo_pivots_bucket{le=\"1\"} 1"));
        assert!(out.contains("lubt_demo_pivots_bucket{le=\"3\"} 3"));
        assert!(out.contains("lubt_demo_pivots_bucket{le=\"127\"} 4"));
        assert!(out.contains("lubt_demo_pivots_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("lubt_demo_pivots_count 4"));
    }
}
