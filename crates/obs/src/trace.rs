//! [`SolveTrace`]: the immutable, serializable snapshot of a recorder.

use std::collections::BTreeMap;

use crate::json::{json_escape, json_f64};
use crate::prometheus::{metric_name, push_sample, sample_f64};
use crate::span::SpanTree;

/// One entry of the bounded event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dotted key naming the emitting phase (`"ebf.round"`).
    pub key: String,
    /// Free-form human-readable message.
    pub message: String,
}

/// Everything a [`crate::TraceRecorder`] accumulated over a solve.
///
/// Counters, maxima, gauges, and events from deterministic phases
/// reproduce bit-for-bit across runs and thread counts; `timings_ns` (and
/// scheduling-dependent keys such as `par.*`) do not, and the JSON
/// emitted by [`SolveTrace::to_json`] keeps timings in a separate,
/// clearly-flagged section so the determinism contract stays auditable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveTrace {
    /// Monotonic counters (`"simplex.pivots"` → total pivots).
    pub counters: BTreeMap<String, u64>,
    /// Running maxima (`"pool.queue_high_water"`).
    pub maxima: BTreeMap<String, u64>,
    /// Last-write-wins gauges (`"simplex.limit_fraction"`).
    pub gauges: BTreeMap<String, f64>,
    /// Per-phase wall-clock nanoseconds — determinism-exempt.
    pub timings_ns: BTreeMap<String, u64>,
    /// Bounded event log, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events discarded after the log filled up.
    pub events_dropped: u64,
    /// Hierarchical span profile. The tree's *shape* (paths, hit counts,
    /// name-sorted child order) is deterministic; its durations are
    /// wall clock and render in the exempt timings section (DESIGN.md
    /// §16).
    pub spans: SpanTree,
}

impl SolveTrace {
    /// The counter value for `key`, `0` when never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The running maximum for `key`, `0` when never recorded.
    pub fn maximum(&self, key: &str) -> u64 {
        self.maxima.get(key).copied().unwrap_or(0)
    }

    /// The gauge value for `key`, if it was ever set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Total wall-clock nanoseconds recorded under `key`.
    pub fn timing_ns(&self, key: &str) -> u64 {
        self.timings_ns.get(key).copied().unwrap_or(0)
    }

    /// A warn-level human-readable note when the bounded event log
    /// overflowed and dropped events, `None` otherwise. The CLI prints
    /// this next to its trace/metrics reports so a silently clipped log
    /// becomes a visible finding (the JSON document alone buries it).
    pub fn events_dropped_note(&self) -> Option<String> {
        (self.events_dropped > 0).then(|| {
            format!(
                "warning[trace-events-dropped]: event log overflowed; {} event(s) \
                 dropped after the first {} (raise the recorder's event cap \
                 to keep them)",
                self.events_dropped,
                self.events.len()
            )
        })
    }

    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.maxima.is_empty()
            && self.gauges.is_empty()
            && self.timings_ns.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
            && self.spans.is_empty()
    }

    /// Serializes the trace as a strict-JSON document.
    ///
    /// Deterministic material (counters, maxima, gauges, events) comes
    /// first; wall-clock timings live under the `"timings"` key with an
    /// explicit `"determinism_exempt": true` marker (DESIGN.md §10). All
    /// numbers go through the total formatter, so non-finite gauges
    /// become `null` rather than bare `NaN`/`inf` tokens.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"lubt-trace-v1\",\n");

        s.push_str("  \"counters\": {");
        push_u64_map(&mut s, &self.counters);
        s.push_str("  },\n");

        s.push_str("  \"maxima\": {");
        push_u64_map(&mut s, &self.maxima);
        s.push_str("  },\n");

        s.push_str("  \"gauges\": {");
        let mut first = true;
        for (k, v) in &self.gauges {
            push_sep(&mut s, &mut first);
            s.push_str(&format!("    \"{}\": {}", json_escape(k), json_f64(*v)));
        }
        close_map(&mut s, first);
        s.push_str("  },\n");

        s.push_str("  \"events\": [");
        let mut first = true;
        for e in &self.events {
            push_sep(&mut s, &mut first);
            s.push_str(&format!(
                "    {{\"key\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&e.key),
                json_escape(&e.message)
            ));
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"events_dropped\": {},\n", self.events_dropped));

        // Span *shape* (depth-first path → hit count) is deterministic
        // material; span durations join the timings below.
        let span_rows = self.spans.flatten();
        s.push_str("  \"spans\": {");
        let mut first = true;
        for (path, hits, _) in &span_rows {
            push_sep(&mut s, &mut first);
            s.push_str(&format!("    \"{}\": {}", json_escape(path), hits));
        }
        close_map(&mut s, first);
        s.push_str("  },\n");

        s.push_str("  \"timings\": {\n    \"determinism_exempt\": true,\n    \"nanos\": {");
        let mut first = true;
        for (k, v) in &self.timings_ns {
            push_sep(&mut s, &mut first);
            s.push_str(&format!("      \"{}\": {}", json_escape(k), v));
        }
        if !first {
            s.push_str("\n    ");
        }
        s.push_str("},\n    \"span_nanos\": {");
        let mut first = true;
        for (path, _, ns) in &span_rows {
            push_sep(&mut s, &mut first);
            s.push_str(&format!("      \"{}\": {}", json_escape(path), ns));
        }
        if !first {
            s.push_str("\n    ");
        }
        s.push_str("}\n  }\n}\n");
        s
    }

    /// Renders the trace in the Prometheus text exposition format:
    /// counters as `<name>_total`, maxima as `<name>_max` gauges, gauges
    /// verbatim, phase timers as `<name>_seconds_total`, plus the event
    /// drop counter. Naming rules live in [`crate::prometheus`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, &v) in &self.counters {
            push_sample(
                &mut out,
                &format!("{}_total", metric_name(key)),
                "counter",
                &format!("Counter \"{}\"", key),
                &v.to_string(),
            );
        }
        for (key, &v) in &self.maxima {
            push_sample(
                &mut out,
                &format!("{}_max", metric_name(key)),
                "gauge",
                &format!("Running maximum \"{}\"", key),
                &v.to_string(),
            );
        }
        for (key, &v) in &self.gauges {
            push_sample(
                &mut out,
                &metric_name(key),
                "gauge",
                &format!("Gauge \"{}\"", key),
                &sample_f64(v),
            );
        }
        for (key, &ns) in &self.timings_ns {
            push_sample(
                &mut out,
                &format!("{}_seconds_total", metric_name(key)),
                "counter",
                &format!("Wall-clock total of phase \"{}\"", key),
                &sample_f64(ns as f64 / 1e9),
            );
        }
        push_sample(
            &mut out,
            "lubt_trace_events_dropped_total",
            "counter",
            "Events discarded by the bounded log",
            &self.events_dropped.to_string(),
        );
        out
    }
}

fn push_sep(s: &mut String, first: &mut bool) {
    if *first {
        s.push('\n');
        *first = false;
    } else {
        s.push_str(",\n");
    }
}

fn close_map(s: &mut String, first: bool) {
    if !first {
        s.push('\n');
    }
}

fn push_u64_map(s: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        push_sep(s, &mut first);
        s.push_str(&format!("    \"{}\": {}", json_escape(k), v));
    }
    close_map(s, first);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{Recorder, TraceRecorder};

    fn sample() -> SolveTrace {
        let rec = TraceRecorder::new();
        rec.incr("simplex.pivots", 120);
        rec.incr("ebf.rounds", 3);
        rec.record_max("pool.queue_high_water", 9);
        rec.gauge("simplex.limit_fraction", 0.0006);
        rec.gauge("ebf.residual_violation", f64::NAN);
        rec.add_time("time.lp", 1_234_567);
        rec.event("ebf.round", "round 1: 17 cuts, residual 3.5e-2");
        rec.snapshot()
    }

    #[test]
    fn json_is_strictly_valid_even_with_nan_gauges() {
        let doc = sample().to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid trace JSON: {e}\n{doc}"));
        assert!(doc.contains("\"ebf.residual_violation\": null"));
        assert!(!doc.contains("NaN"));
    }

    #[test]
    fn empty_trace_serializes_to_valid_json() {
        let doc = SolveTrace::default().to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid empty trace JSON: {e}\n{doc}"));
    }

    #[test]
    fn timings_live_in_their_own_exempt_section() {
        let doc = sample().to_json();
        let timings_at = doc.find("\"timings\"").expect("timings section");
        let exempt_at = doc.find("\"determinism_exempt\": true").expect("marker");
        assert!(exempt_at > timings_at);
        // Deterministic sections come before the timings section.
        assert!(doc.find("\"counters\"").unwrap() < timings_at);
        assert!(doc.find("\"events\"").unwrap() < timings_at);
    }

    #[test]
    fn prometheus_rendering_covers_every_kind() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE lubt_simplex_pivots_total counter"));
        assert!(text.contains("lubt_simplex_pivots_total 120"));
        assert!(text.contains("# TYPE lubt_pool_queue_high_water_max gauge"));
        assert!(text.contains("lubt_time_lp_seconds_total 0.001234567"));
        // Non-finite gauges use the exposition tokens, never bare JSON-isms.
        assert!(text.contains("lubt_ebf_residual_violation NaN"));
        assert!(text.contains("lubt_trace_events_dropped_total 0"));
    }

    #[test]
    fn events_dropped_note_only_fires_on_overflow() {
        assert_eq!(sample().events_dropped_note(), None);
        let rec = TraceRecorder::with_event_cap(1);
        rec.event("k", "kept");
        rec.event("k", "dropped");
        rec.event("k", "dropped too");
        let note = rec.snapshot().events_dropped_note().expect("overflowed");
        assert!(note.contains("warning[trace-events-dropped]"), "{note}");
        assert!(note.contains("2 event(s)"), "{note}");
    }

    #[test]
    fn span_shape_is_deterministic_material_and_nanos_are_exempt() {
        let rec = TraceRecorder::new();
        rec.span_enter("solve");
        rec.span_record("lp", 3, 42);
        rec.span_exit(1_000);
        let doc = rec.snapshot().to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid trace JSON: {e}\n{doc}"));
        let timings_at = doc.find("\"timings\"").unwrap();
        let shape_at = doc.find("\"solve/lp\": 3").expect("span hits in shape map");
        assert!(
            shape_at < timings_at,
            "span shape must precede timings:\n{doc}"
        );
        let nanos_at = doc.find("\"solve/lp\": 42").expect("span nanos");
        assert!(nanos_at > timings_at, "span nanos must be exempt:\n{doc}");
        assert!(
            doc.find("\"span_nanos\"").unwrap() > doc.find("\"determinism_exempt\": true").unwrap()
        );
    }

    #[test]
    fn accessors_default_to_zero() {
        let t = sample();
        assert_eq!(t.counter("simplex.pivots"), 120);
        assert_eq!(t.maximum("pool.queue_high_water"), 9);
        assert_eq!(t.timing_ns("time.lp"), 1_234_567);
        assert_eq!(t.counter("nope"), 0);
        assert!(!t.is_empty());
        assert!(SolveTrace::default().is_empty());
    }
}
