//! The [`Recorder`] trait and the two recorders shipped with the crate.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{SolveTrace, TraceEvent};

/// Sink for solve-path instrumentation.
///
/// Implementations must be cheap and thread-safe: the simplex inner loop,
/// the separation oracle, and every pool worker call into the same
/// recorder concurrently. Keys are dotted paths (`"simplex.pivots"`,
/// `"ebf.rounds"`, `"par.worker3.steals"`); the instrumented code owns the
/// namespace, the recorder just accumulates.
///
/// The `Debug` supertrait keeps `#[derive(Debug)]` working on solver
/// structs that hold an `Arc<dyn Recorder>`.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// `true` when the recorder actually stores anything. Hot paths may
    /// skip formatting work (per-worker keys, event messages) when this
    /// is `false`.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the monotonic counter `key`.
    fn incr(&self, key: &str, delta: u64);

    /// Raises the running maximum `key` to at least `value`.
    fn record_max(&self, key: &str, value: u64);

    /// Sets the gauge `key` to `value` (last write wins).
    fn gauge(&self, key: &str, value: f64);

    /// Adds `nanos` of wall-clock time to the phase timer `key`.
    ///
    /// Timings are reported in a separate section of the trace document
    /// and are exempt from the determinism contract.
    fn add_time(&self, key: &str, nanos: u64);

    /// Appends a message to the bounded event log. Once the log is full
    /// further events are counted but dropped.
    fn event(&self, key: &str, message: &str);
}

/// Shared handle to the recorder that ignores everything.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// The default recorder: every call is a no-op, [`Recorder::enabled`] is
/// `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn incr(&self, _key: &str, _delta: u64) {}
    fn record_max(&self, _key: &str, _value: u64) {}
    fn gauge(&self, _key: &str, _value: f64) {}
    fn add_time(&self, _key: &str, _nanos: u64) {}
    fn event(&self, _key: &str, _message: &str) {}
}

/// How many events a [`TraceRecorder`] keeps before it starts dropping
/// (the drop count is reported in the trace).
pub const DEFAULT_EVENT_CAP: usize = 256;

#[derive(Debug, Default)]
struct TraceInner {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timings_ns: BTreeMap<String, u64>,
    events: Vec<TraceEvent>,
    events_dropped: u64,
}

/// Accumulating recorder behind a mutex; snapshots into a [`SolveTrace`].
///
/// Contention is not a concern at the granularity the workspace records
/// (per solve phase / per round / per worker-exit), so a plain mutex over
/// `BTreeMap`s keeps the crate dependency-free and the key order sorted
/// for stable JSON output.
#[derive(Debug)]
pub struct TraceRecorder {
    inner: Mutex<TraceInner>,
    event_cap: usize,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An empty recorder with the default event cap.
    pub fn new() -> Self {
        Self::with_event_cap(DEFAULT_EVENT_CAP)
    }

    /// An empty recorder keeping at most `cap` events.
    pub fn with_event_cap(cap: usize) -> Self {
        TraceRecorder {
            inner: Mutex::new(TraceInner::default()),
            event_cap: cap,
        }
    }

    /// Copies the current state into an immutable [`SolveTrace`].
    pub fn snapshot(&self) -> SolveTrace {
        let inner = self.inner.lock().expect("trace recorder poisoned");
        SolveTrace {
            counters: inner.counters.clone(),
            maxima: inner.maxima.clone(),
            gauges: inner.gauges.clone(),
            timings_ns: inner.timings_ns.clone(),
            events: inner.events.clone(),
            events_dropped: inner.events_dropped,
        }
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn incr(&self, key: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        let slot = inner.counters.entry(key.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn record_max(&self, key: &str, value: u64) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        let slot = inner.maxima.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    fn gauge(&self, key: &str, value: f64) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        inner.gauges.insert(key.to_string(), value);
    }

    fn add_time(&self, key: &str, nanos: u64) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        let slot = inner.timings_ns.entry(key.to_string()).or_insert(0);
        *slot = slot.saturating_add(nanos);
    }

    fn event(&self, key: &str, message: &str) {
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        if inner.events.len() < self.event_cap {
            inner.events.push(TraceEvent {
                key: key.to_string(),
                message: message.to_string(),
            });
        } else {
            inner.events_dropped += 1;
        }
    }
}

/// Guard that adds the elapsed wall-clock time to a phase timer on drop.
///
/// # Example
///
/// ```
/// use lubt_obs::{PhaseTimer, TraceRecorder};
/// let rec = TraceRecorder::new();
/// {
///     let _t = PhaseTimer::new(&rec, "time.demo");
///     // ... timed work ...
/// }
/// assert!(rec.snapshot().timings_ns.contains_key("time.demo"));
/// ```
pub struct PhaseTimer<'a> {
    rec: &'a dyn Recorder,
    key: &'a str,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    /// Starts timing `key` against `rec`.
    pub fn new(rec: &'a dyn Recorder, key: &'a str) -> Self {
        PhaseTimer {
            rec,
            key,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.rec.add_time(self.key, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_maxima_track() {
        let rec = TraceRecorder::new();
        rec.incr("a", 2);
        rec.incr("a", 3);
        rec.record_max("m", 7);
        rec.record_max("m", 4);
        rec.gauge("g", 0.5);
        rec.gauge("g", 0.25);
        let t = rec.snapshot();
        assert_eq!(t.counter("a"), 5);
        assert_eq!(t.maximum("m"), 7);
        assert_eq!(t.gauge("g"), Some(0.25));
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn event_log_is_bounded() {
        let rec = TraceRecorder::with_event_cap(2);
        for i in 0..5 {
            rec.event("k", &format!("event {i}"));
        }
        let t = rec.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events_dropped, 3);
    }

    #[test]
    fn noop_records_nothing_and_reports_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.incr("a", 1);
        rec.event("k", "m");
        // Nothing to snapshot; the contract is just that calls are cheap
        // and side-effect free.
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Arc::new(TraceRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.incr("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("hits"), 400);
    }
}
