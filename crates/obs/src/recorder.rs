//! The [`Recorder`] trait and the two recorders shipped with the crate.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

use crate::span::{SpanNode, SpanTree};
use crate::trace::{SolveTrace, TraceEvent};

/// Sink for solve-path instrumentation.
///
/// Implementations must be cheap and thread-safe: the simplex inner loop,
/// the separation oracle, and every pool worker call into the same
/// recorder concurrently. Keys are dotted paths (`"simplex.pivots"`,
/// `"ebf.rounds"`, `"par.worker3.steals"`); the instrumented code owns the
/// namespace, the recorder just accumulates.
///
/// The `Debug` supertrait keeps `#[derive(Debug)]` working on solver
/// structs that hold an `Arc<dyn Recorder>`.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// `true` when the recorder actually stores anything. Hot paths may
    /// skip formatting work (per-worker keys, event messages) when this
    /// is `false`.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the monotonic counter `key`.
    fn incr(&self, key: &str, delta: u64);

    /// Raises the running maximum `key` to at least `value`.
    fn record_max(&self, key: &str, value: u64);

    /// Sets the gauge `key` to `value` (last write wins).
    fn gauge(&self, key: &str, value: f64);

    /// Adds `nanos` of wall-clock time to the phase timer `key`.
    ///
    /// Timings are reported in a separate section of the trace document
    /// and are exempt from the determinism contract.
    fn add_time(&self, key: &str, nanos: u64);

    /// Appends a message to the bounded event log. Once the log is full
    /// further events are counted but dropped.
    fn event(&self, key: &str, message: &str);

    /// Opens a named child span under the calling thread's current span
    /// (or at the root when none is open). Callers should pair this with
    /// [`Recorder::span_exit`] — or better, use [`SpanGuard::enter`],
    /// which also skips both calls entirely on a disabled recorder.
    ///
    /// Defaults to a no-op so third-party recorders keep compiling.
    fn span_enter(&self, _name: &str) {}

    /// Closes the calling thread's innermost span, attributing
    /// `elapsed_ns` of wall clock to it.
    fn span_exit(&self, _elapsed_ns: u64) {}

    /// Records `hits` entries and `nanos` of wall clock under the
    /// `/`-separated `path`, resolved relative to the calling thread's
    /// current span. This is the bulk interface for phases measured
    /// elsewhere (queue waits stamped on another thread, DP phase totals)
    /// or aggregated locally before one recorder call (simplex
    /// inner-loop phases).
    fn span_record(&self, _path: &str, _hits: u64, _nanos: u64) {}
}

/// Shared handle to the recorder that ignores everything.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// The default recorder: every call is a no-op, [`Recorder::enabled`] is
/// `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn incr(&self, _key: &str, _delta: u64) {}
    fn record_max(&self, _key: &str, _value: u64) {}
    fn gauge(&self, _key: &str, _value: f64) {}
    fn add_time(&self, _key: &str, _nanos: u64) {}
    fn event(&self, _key: &str, _message: &str) {}
}

/// How many events a [`TraceRecorder`] keeps before it starts dropping
/// (the drop count is reported in the trace).
pub const DEFAULT_EVENT_CAP: usize = 256;

/// One node of the recorder's internal span arena. Children are kept in
/// a name-keyed `BTreeMap` so the exported [`SpanTree`] is name-sorted
/// regardless of which thread first entered which scope.
#[derive(Debug)]
struct SpanArenaNode {
    name: String,
    hits: u64,
    total_ns: u64,
    children: BTreeMap<String, usize>,
}

impl SpanArenaNode {
    fn new(name: &str) -> Self {
        SpanArenaNode {
            name: name.to_string(),
            hits: 0,
            total_ns: 0,
            children: BTreeMap::new(),
        }
    }
}

#[derive(Debug)]
struct TraceInner {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timings_ns: BTreeMap<String, u64>,
    events: Vec<TraceEvent>,
    events_dropped: u64,
    /// Span arena; node 0 is a synthetic root that never appears in the
    /// exported tree.
    span_nodes: Vec<SpanArenaNode>,
    /// Per-thread stack of open span indices. A `HashMap` because
    /// `ThreadId` is not `Ord`; iteration order never matters — stacks
    /// are only ever read through the calling thread's own key.
    span_stacks: HashMap<ThreadId, Vec<usize>>,
}

impl Default for TraceInner {
    fn default() -> Self {
        TraceInner {
            counters: BTreeMap::new(),
            maxima: BTreeMap::new(),
            gauges: BTreeMap::new(),
            timings_ns: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            span_nodes: vec![SpanArenaNode::new("")],
            span_stacks: HashMap::new(),
        }
    }
}

impl TraceInner {
    /// The calling thread's innermost open span (the synthetic root when
    /// none is open).
    fn current(&self, tid: ThreadId) -> usize {
        self.span_stacks
            .get(&tid)
            .and_then(|s| s.last())
            .copied()
            .unwrap_or(0)
    }

    /// Index of `parent`'s child named `name`, creating it when absent.
    fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&i) = self.span_nodes[parent].children.get(name) {
            return i;
        }
        let i = self.span_nodes.len();
        self.span_nodes.push(SpanArenaNode::new(name));
        self.span_nodes[parent].children.insert(name.to_string(), i);
        i
    }

    fn span_tree(&self) -> SpanTree {
        fn build(inner: &TraceInner, idx: usize) -> SpanNode {
            let n = &inner.span_nodes[idx];
            SpanNode {
                name: n.name.clone(),
                hits: n.hits,
                total_ns: n.total_ns,
                children: n.children.values().map(|&c| build(inner, c)).collect(),
            }
        }
        SpanTree {
            roots: self.span_nodes[0]
                .children
                .values()
                .map(|&c| build(self, c))
                .collect(),
        }
    }
}

/// Accumulating recorder behind a mutex; snapshots into a [`SolveTrace`].
///
/// Contention is not a concern at the granularity the workspace records
/// (per solve phase / per round / per worker-exit), so a plain mutex over
/// `BTreeMap`s keeps the crate dependency-free and the key order sorted
/// for stable JSON output.
#[derive(Debug)]
pub struct TraceRecorder {
    inner: Mutex<TraceInner>,
    event_cap: usize,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An empty recorder with the default event cap.
    pub fn new() -> Self {
        Self::with_event_cap(DEFAULT_EVENT_CAP)
    }

    /// An empty recorder keeping at most `cap` events.
    pub fn with_event_cap(cap: usize) -> Self {
        TraceRecorder {
            inner: Mutex::new(TraceInner::default()),
            event_cap: cap,
        }
    }

    /// Locks the state, recovering from poisoning. A worker that panics
    /// while holding the lock leaves behind an ordinary (if possibly
    /// mid-update) map; degrading to whatever was recorded beats turning
    /// one panic into a recorder panic on every other thread during
    /// unwind.
    fn locked(&self) -> MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Copies the current state into an immutable [`SolveTrace`].
    pub fn snapshot(&self) -> SolveTrace {
        let inner = self.locked();
        SolveTrace {
            counters: inner.counters.clone(),
            maxima: inner.maxima.clone(),
            gauges: inner.gauges.clone(),
            timings_ns: inner.timings_ns.clone(),
            events: inner.events.clone(),
            events_dropped: inner.events_dropped,
            spans: inner.span_tree(),
        }
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn incr(&self, key: &str, delta: u64) {
        let mut inner = self.locked();
        let slot = inner.counters.entry(key.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn record_max(&self, key: &str, value: u64) {
        let mut inner = self.locked();
        let slot = inner.maxima.entry(key.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    fn gauge(&self, key: &str, value: f64) {
        let mut inner = self.locked();
        inner.gauges.insert(key.to_string(), value);
    }

    fn add_time(&self, key: &str, nanos: u64) {
        let mut inner = self.locked();
        let slot = inner.timings_ns.entry(key.to_string()).or_insert(0);
        *slot = slot.saturating_add(nanos);
    }

    fn event(&self, key: &str, message: &str) {
        let mut inner = self.locked();
        if inner.events.len() < self.event_cap {
            inner.events.push(TraceEvent {
                key: key.to_string(),
                message: message.to_string(),
            });
        } else {
            inner.events_dropped += 1;
        }
    }

    fn span_enter(&self, name: &str) {
        let tid = std::thread::current().id();
        let mut inner = self.locked();
        let parent = inner.current(tid);
        let idx = inner.child_of(parent, name);
        inner.span_nodes[idx].hits = inner.span_nodes[idx].hits.saturating_add(1);
        inner.span_stacks.entry(tid).or_default().push(idx);
    }

    fn span_exit(&self, elapsed_ns: u64) {
        let tid = std::thread::current().id();
        let mut inner = self.locked();
        if let Some(idx) = inner.span_stacks.get_mut(&tid).and_then(Vec::pop) {
            inner.span_nodes[idx].total_ns =
                inner.span_nodes[idx].total_ns.saturating_add(elapsed_ns);
        }
    }

    fn span_record(&self, path: &str, hits: u64, nanos: u64) {
        let tid = std::thread::current().id();
        let mut inner = self.locked();
        let mut idx = inner.current(tid);
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            idx = inner.child_of(idx, seg);
        }
        if idx == 0 {
            return; // empty path: nothing to attribute
        }
        inner.span_nodes[idx].hits = inner.span_nodes[idx].hits.saturating_add(hits);
        inner.span_nodes[idx].total_ns = inner.span_nodes[idx].total_ns.saturating_add(nanos);
    }
}

/// Guard that adds the elapsed wall-clock time to a phase timer on drop.
///
/// # Example
///
/// ```
/// use lubt_obs::{PhaseTimer, TraceRecorder};
/// let rec = TraceRecorder::new();
/// {
///     let _t = PhaseTimer::new(&rec, "time.demo");
///     // ... timed work ...
/// }
/// assert!(rec.snapshot().timings_ns.contains_key("time.demo"));
/// ```
pub struct PhaseTimer<'a> {
    rec: &'a dyn Recorder,
    key: &'a str,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    /// Starts timing `key` against `rec`.
    pub fn new(rec: &'a dyn Recorder, key: &'a str) -> Self {
        PhaseTimer {
            rec,
            key,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.rec.add_time(self.key, nanos);
    }
}

/// RAII scope for one span: [`Recorder::span_enter`] on construction,
/// [`Recorder::span_exit`] with the elapsed wall clock on drop. The span
/// must be entered and exited on the same thread — the recorder keys its
/// open-span stacks by thread id (the guard is `!Send` by construction,
/// holding a `&dyn` borrow used on drop).
///
/// On a disabled recorder the guard is fully disarmed: no recorder calls,
/// no `Instant::now`, so untraced hot paths pay one virtual call.
///
/// # Example
///
/// ```
/// use lubt_obs::{SpanGuard, TraceRecorder};
/// let rec = TraceRecorder::new();
/// {
///     let _solve = SpanGuard::enter(&rec, "solve");
///     let _lp = SpanGuard::enter(&rec, "lp");
/// }
/// assert_eq!(rec.snapshot().spans.shape_text(), "solve 1\nsolve/lp 1\n");
/// ```
pub struct SpanGuard<'a> {
    rec: Option<&'a dyn Recorder>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Enters the span `name` on `rec`; disarmed when `rec` is disabled.
    pub fn enter(rec: &'a dyn Recorder, name: &str) -> Self {
        if rec.enabled() {
            rec.span_enter(name);
            SpanGuard {
                rec: Some(rec),
                start: Instant::now(),
            }
        } else {
            SpanGuard {
                rec: None,
                start: Instant::now(),
            }
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.span_exit(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_maxima_track() {
        let rec = TraceRecorder::new();
        rec.incr("a", 2);
        rec.incr("a", 3);
        rec.record_max("m", 7);
        rec.record_max("m", 4);
        rec.gauge("g", 0.5);
        rec.gauge("g", 0.25);
        let t = rec.snapshot();
        assert_eq!(t.counter("a"), 5);
        assert_eq!(t.maximum("m"), 7);
        assert_eq!(t.gauge("g"), Some(0.25));
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn event_log_is_bounded() {
        let rec = TraceRecorder::with_event_cap(2);
        for i in 0..5 {
            rec.event("k", &format!("event {i}"));
        }
        let t = rec.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events_dropped, 3);
    }

    #[test]
    fn noop_records_nothing_and_reports_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.incr("a", 1);
        rec.event("k", "m");
        // Nothing to snapshot; the contract is just that calls are cheap
        // and side-effect free.
    }

    #[test]
    fn span_guards_nest_per_thread_and_merge_by_name() {
        let rec = Arc::new(TraceRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let _solve = SpanGuard::enter(rec.as_ref(), "solve");
                    for _ in 0..3 {
                        let _lp = SpanGuard::enter(rec.as_ref(), "lp");
                    }
                });
            }
        });
        let spans = rec.snapshot().spans;
        assert_eq!(spans.shape_text(), "solve 4\nsolve/lp 12\n");
    }

    #[test]
    fn span_record_resolves_relative_to_the_open_span() {
        let rec = TraceRecorder::new();
        {
            let _req = SpanGuard::enter(&rec, "request");
            rec.span_record("queue_wait", 1, 500);
            rec.span_record("solve/dp", 2, 100);
        }
        rec.span_record("idle", 1, 9);
        let spans = rec.snapshot().spans;
        assert_eq!(
            spans.shape_text(),
            "idle 1\nrequest 1\nrequest/queue_wait 1\nrequest/solve 0\nrequest/solve/dp 2\n"
        );
    }

    #[test]
    fn disarmed_guard_on_noop_recorder_records_nothing() {
        let rec = NoopRecorder;
        let _g = SpanGuard::enter(&rec, "solve");
        rec.span_record("x", 1, 1);
        // NoopRecorder has no state; the contract is just that the calls
        // are no-ops and the guard never calls span_exit.
    }

    #[test]
    fn poisoned_recorder_degrades_instead_of_cascading() {
        let rec = Arc::new(TraceRecorder::new());
        rec.incr("before", 1);
        let poisoner = Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies while holding the recorder lock");
        })
        .join();
        // Every entry point must keep working on the poisoned mutex.
        rec.incr("after", 1);
        rec.record_max("m", 3);
        rec.gauge("g", 1.5);
        rec.add_time("t", 10);
        rec.event("k", "still alive");
        rec.span_enter("s");
        rec.span_exit(5);
        rec.span_record("s/child", 1, 2);
        let t = rec.snapshot();
        assert_eq!(t.counter("before"), 1);
        assert_eq!(t.counter("after"), 1);
        assert_eq!(t.spans.shape_text(), "s 1\ns/child 1\n");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Arc::new(TraceRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.incr("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("hits"), 400);
    }
}
