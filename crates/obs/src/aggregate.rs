//! [`AggregateTrace`]: many [`SolveTrace`]s folded into one suite-level
//! summary.
//!
//! A benchmark run solves dozens of instances; the per-solve traces are
//! too granular to gate a CI build on. The aggregate keeps three views of
//! every deterministic counter — the total across solves, the per-solve
//! maximum, and a log-bucketed [`Histogram`] of per-solve values — and
//! quarantines everything scheduling- or clock-dependent (`par.*`,
//! `pool.*`, `time.*` keys) in a separate determinism-exempt section, the
//! same structural split DESIGN.md §9/§10 impose on single-solve traces.
//! Folding and merging are order-independent, so the aggregate for a
//! batch is identical no matter which worker finished which instance
//! first.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::json::json_escape;
use crate::prometheus::{metric_name, push_sample};
use crate::trace::SolveTrace;

/// Key prefixes whose values may legitimately differ between runs or
/// thread counts: work-stealing scheduling (`par.*`, `pool.*`) and
/// wall-clock phase timers (`time.*`). Everything else a recorder
/// collects is covered by the §9 determinism contract.
pub const DETERMINISM_EXEMPT_PREFIXES: [&str; 3] = ["par.", "pool.", "time."];

/// `true` when `key` is exempt from the determinism contract and must be
/// kept out of exact cross-run comparisons.
pub fn is_determinism_exempt_key(key: &str) -> bool {
    DETERMINISM_EXEMPT_PREFIXES
        .iter()
        .any(|p| key.starts_with(p))
}

/// Suite-level fold of per-solve traces.
///
/// # Example
///
/// ```
/// use lubt_obs::{AggregateTrace, Recorder, TraceRecorder};
/// let mut agg = AggregateTrace::new();
/// for pivots in [10u64, 14, 12] {
///     let rec = TraceRecorder::new();
///     rec.incr("simplex.pivots", pivots);
///     agg.fold(&rec.snapshot());
/// }
/// assert_eq!(agg.solves, 3);
/// assert_eq!(agg.counter("simplex.pivots"), 36);
/// assert_eq!(agg.maximum("simplex.pivots"), 14);
/// assert_eq!(agg.histogram("simplex.pivots").unwrap().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AggregateTrace {
    /// Number of traces folded in.
    pub solves: u64,
    /// Deterministic counters, summed across solves.
    pub counters: BTreeMap<String, u64>,
    /// Per-solve maximum of each deterministic counter, and the fold of
    /// per-solve running maxima.
    pub maxima: BTreeMap<String, u64>,
    /// Per-solve distribution of each deterministic counter.
    pub histograms: BTreeMap<String, Histogram>,
    /// Total events observed across solves (the count is deterministic
    /// even though event ordering inside one shared recorder is not).
    pub events: u64,
    /// Events dropped by bounded logs across solves.
    pub events_dropped: u64,
    /// Scheduling-dependent counters (`par.*`, `pool.*`), summed.
    pub sched_counters: BTreeMap<String, u64>,
    /// Scheduling-dependent maxima.
    pub sched_maxima: BTreeMap<String, u64>,
    /// Wall-clock phase totals, summed — determinism-exempt.
    pub timings_ns: BTreeMap<String, u64>,
    /// Per-solve distribution of each phase timer — determinism-exempt.
    pub timing_histograms: BTreeMap<String, Histogram>,
}

impl AggregateTrace {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one per-solve trace into the aggregate.
    ///
    /// Counters route by key: determinism-exempt prefixes go to the
    /// scheduling section, everything else is summed, maxed and recorded
    /// into the per-key histogram. Gauges are last-write-wins snapshots
    /// with no meaningful cross-solve sum, so they are intentionally not
    /// aggregated.
    pub fn fold(&mut self, trace: &SolveTrace) {
        self.solves += 1;
        for (key, &v) in &trace.counters {
            if is_determinism_exempt_key(key) {
                *self.sched_counters.entry(key.clone()).or_insert(0) += v;
            } else {
                *self.counters.entry(key.clone()).or_insert(0) += v;
                let slot = self.maxima.entry(key.clone()).or_insert(0);
                *slot = (*slot).max(v);
                self.histograms.entry(key.clone()).or_default().record(v);
            }
        }
        for (key, &v) in &trace.maxima {
            let map = if is_determinism_exempt_key(key) {
                &mut self.sched_maxima
            } else {
                &mut self.maxima
            };
            let slot = map.entry(key.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (key, &v) in &trace.timings_ns {
            *self.timings_ns.entry(key.clone()).or_insert(0) += v;
            self.timing_histograms
                .entry(key.clone())
                .or_default()
                .record(v);
        }
        self.events += trace.events.len() as u64;
        self.events_dropped += trace.events_dropped;
    }

    /// Combines two aggregates (e.g. from sharded suite runs).
    /// Commutative and associative, like [`Histogram::merge`].
    pub fn merge(&mut self, other: &AggregateTrace) {
        self.solves += other.solves;
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.maxima {
            let slot = self.maxima.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, &v) in &other.sched_counters {
            *self.sched_counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.sched_maxima {
            let slot = self.sched_maxima.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, &v) in &other.timings_ns {
            *self.timings_ns.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.timing_histograms {
            self.timing_histograms
                .entry(k.clone())
                .or_default()
                .merge(h);
        }
        self.events += other.events;
        self.events_dropped += other.events_dropped;
    }

    /// The summed deterministic counter for `key` (`0` when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The per-solve maximum for `key` (`0` when absent).
    pub fn maximum(&self, key: &str) -> u64 {
        self.maxima.get(key).copied().unwrap_or(0)
    }

    /// The per-solve distribution for deterministic counter `key`.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Serializes the aggregate as one strict-JSON document with the
    /// deterministic material under `"deterministic"` and everything
    /// scheduling- or clock-dependent under `"determinism_exempt"` — the
    /// same audit-friendly split [`SolveTrace::to_json`] uses, lifted to
    /// suite level.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"lubt-aggregate-v1\",\n");
        s.push_str(&format!("  \"solves\": {},\n", self.solves));
        s.push_str("  \"deterministic\": ");
        s.push_str(&self.deterministic_json("  "));
        s.push_str(",\n  \"determinism_exempt\": ");
        s.push_str(&self.exempt_json("  "));
        s.push_str("\n}\n");
        s
    }

    /// The deterministic half alone, as one strict-JSON object whose
    /// closing brace sits at `indent`. `lubt bench` embeds this fragment
    /// so the deterministic substring of a benchmark file can be compared
    /// byte-for-byte across thread counts, with the exempt half kept
    /// physically outside it.
    pub fn deterministic_json(&self, indent: &str) -> String {
        let inner = format!("{indent}  ");
        let mut s = String::from("{\n");
        push_u64_map(&mut s, "counters", &self.counters, &inner);
        s.push_str(",\n");
        push_u64_map(&mut s, "maxima", &self.maxima, &inner);
        s.push_str(",\n");
        push_histogram_map(&mut s, "histograms", &self.histograms, &inner);
        s.push_str(",\n");
        s.push_str(&format!("{inner}\"events\": {},\n", self.events));
        s.push_str(&format!(
            "{inner}\"events_dropped\": {}\n{indent}}}",
            self.events_dropped
        ));
        s
    }

    /// The determinism-exempt half alone, as one strict-JSON object whose
    /// closing brace sits at `indent` — the embeddable counterpart of
    /// [`AggregateTrace::deterministic_json`].
    pub fn exempt_json(&self, indent: &str) -> String {
        let inner = format!("{indent}  ");
        let mut s = String::from("{\n");
        push_u64_map(&mut s, "sched_counters", &self.sched_counters, &inner);
        s.push_str(",\n");
        push_u64_map(&mut s, "sched_maxima", &self.sched_maxima, &inner);
        s.push_str(",\n");
        push_u64_map(&mut s, "timings_ns", &self.timings_ns, &inner);
        s.push_str(",\n");
        push_histogram_map(&mut s, "timing_histograms", &self.timing_histograms, &inner);
        s.push_str(&format!("\n{indent}}}"));
        s
    }

    /// Renders the aggregate in the Prometheus text exposition format.
    ///
    /// Deterministic counters become `<name>_total` counters, maxima
    /// become `<name>_max` gauges, per-solve distributions become classic
    /// `histogram` families named `<name>_per_solve`, and phase timers
    /// become `<name>_seconds_total` counters. See [`crate::prometheus`]
    /// for the naming rules.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        push_sample(
            &mut out,
            "lubt_aggregate_solves_total",
            "counter",
            "Solves folded into this aggregate",
            &self.solves.to_string(),
        );
        for (key, &v) in self.counters.iter().chain(self.sched_counters.iter()) {
            let name = format!("{}_total", metric_name(key));
            push_sample(
                &mut out,
                &name,
                "counter",
                &format!("Sum of \"{}\" across solves", key),
                &v.to_string(),
            );
        }
        for (key, &v) in self.maxima.iter().chain(self.sched_maxima.iter()) {
            let name = format!("{}_max", metric_name(key));
            push_sample(
                &mut out,
                &name,
                "gauge",
                &format!("Per-solve maximum of \"{}\"", key),
                &v.to_string(),
            );
        }
        for (key, h) in &self.histograms {
            h.push_prometheus(&mut out, &format!("{}_per_solve", metric_name(key)), key);
        }
        for (key, &ns) in &self.timings_ns {
            let name = format!("{}_seconds_total", metric_name(key));
            push_sample(
                &mut out,
                &name,
                "counter",
                &format!("Wall-clock total of phase \"{}\"", key),
                &crate::prometheus::sample_f64(ns as f64 / 1e9),
            );
        }
        push_sample(
            &mut out,
            "lubt_trace_events_dropped_total",
            "counter",
            "Events discarded by bounded logs",
            &self.events_dropped.to_string(),
        );
        out
    }
}

fn push_u64_map(s: &mut String, label: &str, map: &BTreeMap<String, u64>, indent: &str) {
    s.push_str(&format!("{indent}\"{label}\": {{"));
    let mut first = true;
    for (k, v) in map {
        s.push_str(if first { "\n" } else { ",\n" });
        first = false;
        s.push_str(&format!("{indent}  \"{}\": {v}", json_escape(k)));
    }
    if !first {
        s.push_str(&format!("\n{indent}"));
    }
    s.push('}');
}

fn push_histogram_map(
    s: &mut String,
    label: &str,
    map: &BTreeMap<String, Histogram>,
    indent: &str,
) {
    s.push_str(&format!("{indent}\"{label}\": {{"));
    let mut first = true;
    for (k, h) in map {
        s.push_str(if first { "\n" } else { ",\n" });
        first = false;
        s.push_str(&format!(
            "{indent}  \"{}\": {}",
            json_escape(k),
            h.to_json()
        ));
    }
    if !first {
        s.push_str(&format!("\n{indent}"));
    }
    s.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{Recorder, TraceRecorder};

    fn trace(pivots: u64, steals: u64, lp_ns: u64) -> SolveTrace {
        let rec = TraceRecorder::new();
        rec.incr("simplex.pivots", pivots);
        rec.incr("ebf.rounds", 2);
        rec.incr("par.steals", steals);
        rec.record_max("par.queue_high_water", steals + 1);
        rec.record_max("ebf.peak_violations", pivots / 2);
        rec.gauge("simplex.limit_fraction", 0.25);
        rec.add_time("time.lp", lp_ns);
        rec.event("ebf.round", "round 1");
        rec.snapshot()
    }

    #[test]
    fn exemption_is_prefix_based() {
        assert!(is_determinism_exempt_key("par.steals"));
        assert!(is_determinism_exempt_key("pool.queue_high_water"));
        assert!(is_determinism_exempt_key("time.lp"));
        assert!(!is_determinism_exempt_key("simplex.pivots"));
        assert!(!is_determinism_exempt_key("partition.cuts"));
    }

    #[test]
    fn fold_routes_keys_by_contract_section() {
        let mut agg = AggregateTrace::new();
        agg.fold(&trace(10, 3, 500));
        agg.fold(&trace(6, 0, 700));
        assert_eq!(agg.solves, 2);
        assert_eq!(agg.counter("simplex.pivots"), 16);
        assert_eq!(agg.maximum("simplex.pivots"), 10);
        assert_eq!(agg.histogram("simplex.pivots").unwrap().count(), 2);
        // Scheduling keys never leak into the deterministic section.
        assert_eq!(agg.counter("par.steals"), 0);
        assert_eq!(agg.sched_counters["par.steals"], 3);
        assert_eq!(agg.sched_maxima["par.queue_high_water"], 4);
        assert!(agg.histogram("par.steals").is_none());
        // Timers sum and keep per-solve distributions, in the exempt half.
        assert_eq!(agg.timings_ns["time.lp"], 1200);
        assert_eq!(agg.timing_histograms["time.lp"].count(), 2);
        assert_eq!(agg.events, 2);
    }

    #[test]
    fn fold_and_merge_are_order_independent() {
        let traces = [trace(10, 3, 500), trace(6, 0, 700), trace(90, 7, 100)];
        let mut forward = AggregateTrace::new();
        traces.iter().for_each(|t| forward.fold(t));
        let mut backward = AggregateTrace::new();
        traces.iter().rev().for_each(|t| backward.fold(t));
        assert_eq!(forward, backward);

        let mut a = AggregateTrace::new();
        a.fold(&traces[0]);
        let mut b = AggregateTrace::new();
        b.fold(&traces[1]);
        b.fold(&traces[2]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, forward);
    }

    #[test]
    fn json_is_strict_and_keeps_the_sections_ordered() {
        let mut agg = AggregateTrace::new();
        agg.fold(&trace(10, 3, 500));
        let doc = agg.to_json();
        validate(&doc).unwrap_or_else(|e| panic!("invalid aggregate JSON: {e}\n{doc}"));
        let det = doc.find("\"deterministic\"").unwrap();
        let exempt = doc.find("\"determinism_exempt\"").unwrap();
        assert!(det < exempt);
        let exempt_half = &doc[exempt..];
        assert!(exempt_half.contains("par.steals"));
        assert!(exempt_half.contains("time.lp"));
        assert!(!doc[det..exempt].contains("par."));
        // Empty aggregate still serializes strictly.
        validate(&AggregateTrace::new().to_json()).unwrap();
    }

    #[test]
    fn prometheus_exposition_covers_every_section() {
        let mut agg = AggregateTrace::new();
        agg.fold(&trace(10, 3, 500));
        let text = agg.to_prometheus();
        assert!(text.contains("# TYPE lubt_simplex_pivots_total counter"));
        assert!(text.contains("lubt_simplex_pivots_total 10"));
        assert!(text.contains("# TYPE lubt_simplex_pivots_per_solve histogram"));
        assert!(text.contains("lubt_par_steals_total 3"));
        assert!(text.contains("# TYPE lubt_time_lp_seconds_total counter"));
        assert!(text.contains("lubt_aggregate_solves_total 1"));
    }
}
