//! Solve-trace observability for the LUBT workspace.
//!
//! Every stage of the pipeline — simplex pivoting, lazy cut separation,
//! geometric embedding, work-stealing batch scheduling — reports what it
//! did through the [`Recorder`] trait defined here. The crate is
//! dependency-free and deliberately tiny: a recorder is a sink for
//! monotonic counters, running maxima, gauges, per-phase wall-clock
//! timers, and a bounded event log.
//!
//! Two recorders ship with the crate:
//!
//! * [`NoopRecorder`] — the default everywhere; every call is a no-op and
//!   [`Recorder::enabled`] returns `false` so hot paths can skip even the
//!   bookkeeping needed to produce a value.
//! * [`TraceRecorder`] — accumulates everything behind a mutex and
//!   snapshots into a [`SolveTrace`], the serializable artifact behind
//!   `lubt solve --trace-json` and `lubt batch --metrics`.
//!
//! Above the per-solve layer sits the aggregation layer: a deterministic
//! log-bucketed [`Histogram`] and an [`AggregateTrace`] that folds many
//! [`SolveTrace`]s into suite-level counters, maxima and per-solve
//! distributions — the data model behind `lubt bench` / `lubt report`
//! benchmark files. Both traces also render as Prometheus text
//! expositions (see [`prometheus`]) so the same counters are scrapeable
//! when LUBT runs as a service.
//!
//! # Determinism carve-out
//!
//! The workspace guarantees byte-identical default output across thread
//! counts (DESIGN.md §9). Traces respect that split structurally: counter,
//! maximum, and gauge totals from deterministic phases reproduce across
//! runs, while wall-clock timings (and scheduling-dependent keys such as
//! `par.*` steal counts) live in clearly separated sections of the JSON
//! document and are exempt from the contract. The default (untraced)
//! output never contains a trace at all.
//!
//! # Example
//!
//! ```
//! use lubt_obs::{Recorder, TraceRecorder};
//! let rec = TraceRecorder::new();
//! rec.incr("simplex.pivots", 42);
//! rec.record_max("simplex.peak_pivots", 42);
//! let trace = rec.snapshot();
//! assert_eq!(trace.counter("simplex.pivots"), 42);
//! lubt_obs::json::validate(&trace.to_json()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
pub mod fsio;
mod histogram;
pub mod json;
pub mod prometheus;
mod recorder;
mod span;
mod trace;

pub use aggregate::{is_determinism_exempt_key, AggregateTrace, DETERMINISM_EXEMPT_PREFIXES};
pub use histogram::Histogram;
pub use recorder::{
    noop, NoopRecorder, PhaseTimer, Recorder, SpanGuard, TraceRecorder, DEFAULT_EVENT_CAP,
};
pub use span::{lint_folded, SpanNode, SpanTree};
pub use trace::{SolveTrace, TraceEvent};
