//! Solve-trace observability for the LUBT workspace.
//!
//! Every stage of the pipeline — simplex pivoting, lazy cut separation,
//! geometric embedding, work-stealing batch scheduling — reports what it
//! did through the [`Recorder`] trait defined here. The crate is
//! dependency-free and deliberately tiny: a recorder is a sink for
//! monotonic counters, running maxima, gauges, per-phase wall-clock
//! timers, and a bounded event log.
//!
//! Two recorders ship with the crate:
//!
//! * [`NoopRecorder`] — the default everywhere; every call is a no-op and
//!   [`Recorder::enabled`] returns `false` so hot paths can skip even the
//!   bookkeeping needed to produce a value.
//! * [`TraceRecorder`] — accumulates everything behind a mutex and
//!   snapshots into a [`SolveTrace`], the serializable artifact behind
//!   `lubt solve --trace-json` and `lubt batch --metrics`.
//!
//! # Determinism carve-out
//!
//! The workspace guarantees byte-identical default output across thread
//! counts (DESIGN.md §9). Traces respect that split structurally: counter,
//! maximum, and gauge totals from deterministic phases reproduce across
//! runs, while wall-clock timings (and scheduling-dependent keys such as
//! `par.*` steal counts) live in clearly separated sections of the JSON
//! document and are exempt from the contract. The default (untraced)
//! output never contains a trace at all.
//!
//! # Example
//!
//! ```
//! use lubt_obs::{Recorder, TraceRecorder};
//! let rec = TraceRecorder::new();
//! rec.incr("simplex.pivots", 42);
//! rec.record_max("simplex.peak_pivots", 42);
//! let trace = rec.snapshot();
//! assert_eq!(trace.counter("simplex.pivots"), 42);
//! lubt_obs::json::validate(&trace.to_json()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod recorder;
mod trace;

pub use recorder::{noop, NoopRecorder, PhaseTimer, Recorder, TraceRecorder};
pub use trace::{SolveTrace, TraceEvent};
