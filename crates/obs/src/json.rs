//! Strict JSON toolkit: a total number formatter and a
//! tolerant-of-nothing RFC 8259 validator.
//!
//! Every hand-built JSON emitter in the workspace formats floats through
//! [`json_f64`] (non-finite → `null`, so no document can ever carry a
//! bare `NaN`/`inf` token), and the test suites re-parse every emitted
//! document with [`validate`].

use std::fmt;

/// Formats an `f64` as a JSON value. Total: non-finite values become
/// `null` instead of the bare `NaN`/`inf` tokens `format!` would produce.
/// Integral values inside the exactly-representable range print without a
/// fractional part, matching the workspace's historical output.
///
/// # Example
///
/// ```
/// assert_eq!(lubt_obs::json::json_f64(2.0), "2");
/// assert_eq!(lubt_obs::json::json_f64(2.5), "2.5");
/// assert_eq!(lubt_obs::json::json_f64(f64::NAN), "null");
/// assert_eq!(lubt_obs::json::json_f64(f64::INFINITY), "null");
/// ```
pub fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where and why a document failed [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the validator expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth [`validate`] accepts before bailing out; keeps
/// the recursive-descent parser safe on adversarial input.
const MAX_DEPTH: usize = 256;

/// Validates that `text` is exactly one strict RFC 8259 JSON document.
///
/// Rejects everything the lenient parsers people usually reach for let
/// through: bare `NaN`/`Infinity` tokens, trailing commas, single quotes,
/// comments, unescaped control characters, leading zeros, trailing
/// garbage after the top-level value.
pub fn validate(text: &str) -> Result<(), JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 256 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.expect_literal("true"),
            Some(b'f') => self.expect_literal("false"),
            Some(b'n') => self.expect_literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        self.pos += 1; // consume `{`
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("object keys must be strings"));
            }
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        return Err(self.err("trailing comma in object"));
                    }
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        self.pos += 1; // consume `[`
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        return Err(self.err("trailing comma in array"));
                    }
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.pos += 1; // consume opening quote
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("\\u escape needs four hex digits")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatter_is_total() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-3.0), "-3");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(1e16), "10000000000000000");
        // Every output is itself a valid JSON value.
        for x in [f64::NAN, f64::INFINITY, -0.0, 1.5e-12, 9.9e200] {
            validate(&json_f64(x)).unwrap();
        }
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-0.5e+3",
            "\"hi \\u0041\\n\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"a\": null}]]",
            "{\"k\": \"v\", \"n\": [1.5, -2e-7]}",
            "  {\"pad\": 0}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_lenient_extensions() {
        for doc in [
            "NaN",
            "inf",
            "Infinity",
            "-inf",
            "{\"x\": NaN}",
            "[1, Infinity]",
            "[1,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "{a: 1}",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "// comment\n1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctrl \u{0}\"",
            "{\"a\": 1} extra",
            "{\"a\"}",
            "",
            "[",
        ] {
            assert!(validate(doc).is_err(), "accepted invalid doc: {doc:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        validate(&ok).unwrap();
    }

    #[test]
    fn escape_roundtrips_through_validation() {
        let nasty = "quote\" back\\ newline\n tab\t ctrl\u{1} unicode✓";
        let doc = format!("\"{}\"", json_escape(nasty));
        validate(&doc).unwrap();
    }
}
