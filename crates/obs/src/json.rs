//! Strict JSON toolkit: a total number formatter, a tolerant-of-nothing
//! RFC 8259 validator, and a small value parser.
//!
//! Every hand-built JSON emitter in the workspace formats floats through
//! [`json_f64`] (non-finite → `null`, so no document can ever carry a
//! bare `NaN`/`inf` token), and the test suites re-parse every emitted
//! document with [`validate`]. Consumers that need the parsed values —
//! `lubt report` diffing two `BENCH_*.json` files — go through [`parse`],
//! which applies exactly the same strictness rules.

use std::fmt;

/// Formats an `f64` as a JSON value. Total: non-finite values become
/// `null` instead of the bare `NaN`/`inf` tokens `format!` would produce.
/// Integral values inside the exactly-representable range print without a
/// fractional part, matching the workspace's historical output.
///
/// # Example
///
/// ```
/// assert_eq!(lubt_obs::json::json_f64(2.0), "2");
/// assert_eq!(lubt_obs::json::json_f64(2.5), "2.5");
/// assert_eq!(lubt_obs::json::json_f64(f64::NAN), "null");
/// assert_eq!(lubt_obs::json::json_f64(f64::INFINITY), "null");
/// ```
pub fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where and why a document failed [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What the validator expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth [`validate`] accepts before bailing out; keeps
/// the recursive-descent parser safe on adversarial input.
const MAX_DEPTH: usize = 256;

/// Input byte cap applied by [`parse`] / [`validate`]. Generous enough for
/// every document the workspace emits (bench documents are a few hundred
/// KiB); callers facing wire input should pick their own, much smaller cap
/// via [`parse_limited`].
pub const DEFAULT_MAX_INPUT_BYTES: usize = 64 << 20;

/// A parsed JSON value, as produced by [`parse`].
///
/// Objects keep their key order in a plain pair vector — the documents
/// this crate emits are small and sorted, so ordered linear lookup beats
/// pulling in a map and keeps round-trip diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-free key path through nested objects.
    pub fn get_path(&self, path: &[&str]) -> Option<&Value> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The number, if this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (integral, in the `f64`
    /// exactly-representable range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && *x == x.trunc() && *x < 9.007_199_254_740_992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Arr`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is a [`Value::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses exactly one strict RFC 8259 JSON document into a [`Value`].
///
/// Same grammar as [`validate`]; the only difference is that the values
/// are kept.
///
/// # Errors
///
/// Returns the first offending byte offset and reason.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    parse_limited(text, DEFAULT_MAX_INPUT_BYTES)
}

/// [`parse`] with an explicit input byte cap.
///
/// The length check runs before a single byte is scanned, so an oversized
/// document costs O(1) to reject — this is the entry point the serve
/// framer uses on untrusted wire input.
///
/// # Errors
///
/// Returns a [`JsonError`] at offset `max_bytes` when the input is longer
/// than the cap, otherwise the first offending byte offset and reason.
pub fn parse_limited(text: &str, max_bytes: usize) -> Result<Value, JsonError> {
    if text.len() > max_bytes {
        return Err(JsonError {
            offset: max_bytes,
            message: format!(
                "input of {} bytes exceeds the {max_bytes}-byte cap",
                text.len()
            ),
        });
    }
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(value)
}

/// Validates that `text` is exactly one strict RFC 8259 JSON document.
///
/// Rejects everything the lenient parsers people usually reach for let
/// through: bare `NaN`/`Infinity` tokens, trailing commas, single quotes,
/// comments, unescaped control characters, leading zeros, trailing
/// garbage after the top-level value, and duplicate object keys (which
/// RFC 8259 leaves undefined and which make a fine smuggling vector).
pub fn validate(text: &str) -> Result<(), JsonError> {
    parse(text).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 256 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(Value::Num),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume `{`
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("object keys must be strings"));
            }
            let key_offset = self.pos;
            let key = self.string()?;
            // Last-wins duplicate keys are a smuggling vector on wire
            // input (one validator sees the first value, the consumer the
            // second), so reject them outright.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate object key \"{}\"", json_escape(&key)),
                });
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        return Err(self.err("trailing comma in object"));
                    }
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume `[`
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        return Err(self.err("trailing comma in array"));
                    }
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    /// Reads four hex digits of a `\u` escape as a code unit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            match self.peek() {
                Some(c) if c.is_ascii_hexdigit() => {
                    unit = unit * 16 + (c as char).to_digit(16).unwrap();
                    self.pos += 1;
                }
                _ => return Err(self.err("\\u escape needs four hex digits")),
            }
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Combine a valid surrogate pair; a lone
                            // surrogate stays *valid* (the grammar allows
                            // any \uXXXX) but decodes to U+FFFD.
                            let c = if (0xD800..0xDC00).contains(&unit)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                let mark = self.pos;
                                self.pos += 2;
                                let low = self.hex4()?;
                                if (0xDC00..0xE000).contains(&low) {
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    // Not a low surrogate: leave it for the
                                    // next loop iteration to decode.
                                    self.pos = mark;
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(unit).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so decoding
                    // from the current boundary cannot fail.
                    let ch = self.as_str_from(self.pos);
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// The `char` starting at byte offset `at` (must be a boundary).
    fn as_str_from(&self, at: usize) -> char {
        std::str::from_utf8(&self.bytes[at..])
            .ok()
            .and_then(|s| s.chars().next())
            .unwrap_or('\u{FFFD}')
    }

    fn number(&mut self) -> Result<f64, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse()
            .map_err(|_| self.err("number out of representable range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatter_is_total() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-3.0), "-3");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(1e16), "10000000000000000");
        // Every output is itself a valid JSON value.
        for x in [f64::NAN, f64::INFINITY, -0.0, 1.5e-12, 9.9e200] {
            validate(&json_f64(x)).unwrap();
        }
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-0.5e+3",
            "\"hi \\u0041\\n\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"a\": null}]]",
            "{\"k\": \"v\", \"n\": [1.5, -2e-7]}",
            "  {\"pad\": 0}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_lenient_extensions() {
        for doc in [
            "NaN",
            "inf",
            "Infinity",
            "-inf",
            "{\"x\": NaN}",
            "[1, Infinity]",
            "[1,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "{a: 1}",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "// comment\n1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctrl \u{0}\"",
            "{\"a\": 1} extra",
            "{\"a\"}",
            "",
            "[",
        ] {
            assert!(validate(doc).is_err(), "accepted invalid doc: {doc:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        validate(&ok).unwrap();
    }

    #[test]
    fn escape_roundtrips_through_validation() {
        let nasty = "quote\" back\\ newline\n tab\t ctrl\u{1} unicode✓";
        let doc = format!("\"{}\"", json_escape(nasty));
        validate(&doc).unwrap();
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse("{\"a\": [1, 2.5, null], \"b\": {\"c\": \"hi\\n\", \"d\": true}}").unwrap();
        assert_eq!(v.get_path(&["b", "c"]).unwrap().as_str(), Some("hi\n"));
        assert_eq!(v.get_path(&["b", "d"]), Some(&Value::Bool(true)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None, "2.5 is not an exact integer");
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("a").unwrap().get("x"), None, "arrays have no keys");
    }

    #[test]
    fn parse_resolves_escapes_including_surrogate_pairs() {
        let v = parse("\"\\u0041\\uD83D\\uDE00\\t\"").unwrap();
        assert_eq!(v.as_str(), Some("A😀\t"));
        // A lone surrogate stays valid (grammar-level) but decodes to the
        // replacement character, matching the validator's acceptance.
        let v = parse("\"\\uD800x\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
    }

    #[test]
    fn escape_format_parse_roundtrips_exactly() {
        let nasty = "quote\" back\\ newline\n tab\t ctrl\u{1} unicode✓";
        let doc = format!("\"{}\"", json_escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_duplicate_object_keys() {
        // Regression: `parse` used to keep both pairs (get() returned the
        // first, a last-wins consumer would see the second).
        let err = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert_eq!(err.offset, 9, "error points at the duplicate key");
        assert!(err.message.contains("duplicate object key \"a\""), "{err}");
        // Escaped spellings of the same key are still duplicates.
        assert!(parse("{\"a\": 1, \"\\u0061\": 2}").is_err());
        // Nested objects are checked too, each scope independently.
        assert!(parse("{\"o\": {\"x\": 1, \"x\": 2}}").is_err());
        validate("{\"o\": {\"x\": 1}, \"p\": {\"x\": 2}}").unwrap();
    }

    #[test]
    fn input_byte_cap_rejects_before_scanning() {
        let doc = "{\"key\": [1, 2, 3]}";
        parse_limited(doc, doc.len()).unwrap();
        let err = parse_limited(doc, doc.len() - 1).unwrap_err();
        assert_eq!(err.offset, doc.len() - 1);
        assert!(err.message.contains("exceeds"), "{err}");
        // The default cap is generous: ordinary documents pass through.
        parse(doc).unwrap();
        // An oversized document is rejected by length alone — even when
        // its contents would not parse.
        let junk = "x".repeat(DEFAULT_MAX_INPUT_BYTES + 1);
        let err = parse(&junk).unwrap_err();
        assert_eq!(err.offset, DEFAULT_MAX_INPUT_BYTES);
    }
}
