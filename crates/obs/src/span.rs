//! Hierarchical span profiles: the parent/child counterpart of the flat
//! `time.*` phase timers.
//!
//! A [`SpanTree`] answers attribution questions the flat timers cannot —
//! "separation round 7 spent 80% of its LP time in refactorization" needs
//! a parent/child structure, not a sum. The tree splits along the same
//! determinism seam as the rest of the trace document (DESIGN.md §16):
//!
//! * **Shape** — span *paths*, per-span *hit counts*, and child *order*
//!   (children are kept name-sorted) — is part of the deterministic
//!   section and must be byte-identical across thread counts and across
//!   profiled/unprofiled runs of the same instance.
//! * **Durations** (`total_ns`) are wall clock and live with `time.*` in
//!   the determinism-exempt section.
//!
//! Two export formats turn a tree into standard profiler input:
//! [`SpanTree::to_chrome_trace`] emits trace-event JSON that loads in
//! `chrome://tracing` / Perfetto, and [`SpanTree::to_folded`] emits
//! collapsed-stack lines for `flamegraph.pl` / inferno. Both are derived
//! views; the tree itself is what travels inside a
//! [`crate::SolveTrace`].

use crate::json::json_escape;

/// One node of a span profile: a named scope, how many times it was
/// entered, the total wall clock spent inside it, and its name-sorted
/// children.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanNode {
    /// Scope name (one path segment; `/` and whitespace are the caller's
    /// responsibility to avoid — exporters sanitize defensively).
    pub name: String,
    /// Number of times the scope was entered (deterministic).
    pub hits: u64,
    /// Total wall-clock nanoseconds inside the scope (determinism-exempt).
    pub total_ns: u64,
    /// Child scopes, sorted by name. Name-sorted order — not first-entry
    /// order — is what keeps the shape identical across thread counts
    /// when several workers grow one shared tree.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> Self {
        SpanNode {
            name: name.to_string(),
            hits: 0,
            total_ns: 0,
            children: Vec::new(),
        }
    }

    /// Index of the child named `name`, inserting an empty one at the
    /// sorted position when absent.
    fn child_index(&mut self, name: &str) -> usize {
        match self
            .children
            .binary_search_by(|c| c.name.as_str().cmp(name))
        {
            Ok(i) => i,
            Err(i) => {
                self.children.insert(i, SpanNode::new(name));
                i
            }
        }
    }

    /// Wall clock inside this node but outside every child, clamped at
    /// zero (children measured on other stacks can transiently exceed the
    /// parent by scheduling noise).
    pub fn self_ns(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(child_total)
    }

    fn merge_from(&mut self, other: &SpanNode) {
        self.hits = self.hits.saturating_add(other.hits);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        for child in &other.children {
            let i = self.child_index(&child.name);
            self.children[i].merge_from(child);
        }
    }
}

/// A forest of [`SpanNode`]s — the span profile of one solve, one serve
/// request, or a whole batch (shared-recorder trees accumulate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTree {
    /// Top-level spans, sorted by name.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// An empty tree.
    pub fn new() -> Self {
        SpanTree::default()
    }

    /// `true` when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    fn root_index(&mut self, name: &str) -> usize {
        match self.roots.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => i,
            Err(i) => {
                self.roots.insert(i, SpanNode::new(name));
                i
            }
        }
    }

    /// Adds `hits` entries and `nanos` of wall clock to the span at
    /// `path` (`/`-separated, e.g. `"solve/round.0007/lp"`), creating
    /// intermediate nodes as needed. Intermediate nodes get no hits of
    /// their own.
    pub fn record(&mut self, path: &str, hits: u64, nanos: u64) {
        let mut segs = path.split('/').filter(|s| !s.is_empty());
        let Some(first) = segs.next() else {
            return;
        };
        let mut node = {
            let i = self.root_index(first);
            &mut self.roots[i]
        };
        for seg in segs {
            let i = node.child_index(seg);
            node = &mut node.children[i];
        }
        node.hits = node.hits.saturating_add(hits);
        node.total_ns = node.total_ns.saturating_add(nanos);
    }

    /// Folds `other` into `self` (hit counts and durations add; the shape
    /// union stays name-sorted). Merging is order-independent, which is
    /// what makes per-instance trees and one shared accumulating tree
    /// produce the same shape.
    pub fn merge(&mut self, other: &SpanTree) {
        for root in &other.roots {
            let i = self.root_index(&root.name);
            self.roots[i].merge_from(root);
        }
    }

    /// Depth-first `(path, hits, total_ns)` rows, parents before
    /// children, siblings in name order.
    pub fn flatten(&self) -> Vec<(String, u64, u64)> {
        fn walk(node: &SpanNode, prefix: &str, out: &mut Vec<(String, u64, u64)>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            out.push((path.clone(), node.hits, node.total_ns));
            for c in &node.children {
                walk(c, &path, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, "", &mut out);
        }
        out
    }

    /// The deterministic *shape* of the tree as text: one `"<path> <hits>"`
    /// line per span in depth-first order. This is the artifact the CI
    /// determinism job `cmp`s across thread counts — it deliberately
    /// contains no durations.
    pub fn shape_text(&self) -> String {
        let mut s = String::new();
        for (path, hits, _) in self.flatten() {
            s.push_str(&path);
            s.push(' ');
            s.push_str(&hits.to_string());
            s.push('\n');
        }
        s
    }

    /// A human-readable indented rendering with durations (for
    /// `lubt profile --format tree`).
    pub fn render_text(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{}  hits={}  total={}ns  self={}ns\n",
                node.name,
                node.hits,
                node.total_ns,
                node.self_ns()
            ));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        for r in &self.roots {
            walk(r, 0, &mut s);
        }
        s
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` envelope of
    /// `chrome://tracing` / Perfetto). Each span becomes one complete
    /// (`"ph": "X"`) event on a synthetic timeline: a parent starts where
    /// its caller placed it and its children are laid out sequentially
    /// from the parent's start, so nesting in the viewer mirrors the call
    /// tree even though the tree stores totals, not raw timestamps.
    /// Timestamps and durations are microseconds with nanosecond decimals.
    pub fn to_chrome_trace(&self) -> String {
        fn micros(ns: u64) -> String {
            format!("{}.{:03}", ns / 1_000, ns % 1_000)
        }
        fn walk(node: &SpanNode, path: &str, start_ns: u64, first: &mut bool, out: &mut String) {
            let path = if path.is_empty() {
                node.name.clone()
            } else {
                format!("{path}/{}", node.name)
            };
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": 1, \"args\": {{\"hits\": {}, \"path\": \"{}\"}}}}",
                json_escape(&node.name),
                micros(start_ns),
                micros(node.total_ns),
                node.hits,
                json_escape(&path)
            ));
            let mut cursor = start_ns;
            for c in &node.children {
                walk(c, &path, cursor, first, out);
                cursor = cursor.saturating_add(c.total_ns);
            }
        }
        let mut s = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
        let mut first = true;
        let mut cursor = 0u64;
        for r in &self.roots {
            walk(r, "", cursor, &mut first, &mut s);
            cursor = cursor.saturating_add(r.total_ns);
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Collapsed-stack ("folded") text for `flamegraph.pl` / inferno:
    /// one `frame;frame;frame <count>` line per span with nonzero self
    /// time, counts in nanoseconds. Frame names are sanitized (spaces and
    /// semicolons would corrupt the format) and zero-self-time spans are
    /// skipped — folded counts must be positive integers.
    pub fn to_folded(&self) -> String {
        fn frame(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c == ';' || c.is_whitespace() {
                        '_'
                    } else {
                        c
                    }
                })
                .collect()
        }
        fn walk(node: &SpanNode, stack: &str, out: &mut String) {
            let stack = if stack.is_empty() {
                frame(&node.name)
            } else {
                format!("{stack};{}", frame(&node.name))
            };
            let self_ns = node.self_ns();
            if self_ns > 0 {
                out.push_str(&format!("{stack} {self_ns}\n"));
            }
            for c in &node.children {
                walk(c, &stack, out);
            }
        }
        let mut s = String::new();
        for r in &self.roots {
            walk(r, "", &mut s);
        }
        s
    }
}

/// Lints a collapsed-stack document: every non-empty line must be
/// `frame(;frame)* <count>` with no spaces inside frames and a strictly
/// positive integer count. Returns the first violation.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn lint_folded(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no count field: {:?}", lineno + 1, line));
        };
        if stack.is_empty() {
            return Err(format!("line {}: empty stack: {:?}", lineno + 1, line));
        }
        if stack.contains(' ') {
            return Err(format!(
                "line {}: space inside a frame name: {:?}",
                lineno + 1,
                line
            ));
        }
        if stack.split(';').any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame: {:?}", lineno + 1, line));
        }
        match count.parse::<u64>() {
            Ok(n) if n > 0 => {}
            _ => {
                return Err(format!(
                    "line {}: count must be a positive integer, got {:?}",
                    lineno + 1,
                    count
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample() -> SpanTree {
        let mut t = SpanTree::new();
        t.record("solve", 1, 1_000_000);
        t.record("solve/round.0001", 1, 600_000);
        t.record("solve/round.0001/lp", 1, 400_000);
        t.record("solve/round.0001/separate", 1, 150_000);
        t.record("solve/round.0002", 1, 300_000);
        t.record("solve/round.0002/lp", 1, 290_000);
        t.record("embed", 1, 50_000);
        t
    }

    #[test]
    fn record_builds_sorted_paths() {
        let t = sample();
        let rows = t.flatten();
        let paths: Vec<&str> = rows.iter().map(|r| r.0.as_str()).collect();
        assert_eq!(
            paths,
            [
                "embed",
                "solve",
                "solve/round.0001",
                "solve/round.0001/lp",
                "solve/round.0001/separate",
                "solve/round.0002",
                "solve/round.0002/lp",
            ]
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = SpanTree::new();
        a.record("solve/lp", 2, 10);
        a.record("solve", 1, 30);
        let mut b = SpanTree::new();
        b.record("solve/separate", 1, 5);
        b.record("embed", 1, 7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.shape_text(), ba.shape_text());
    }

    #[test]
    fn shape_text_has_hits_but_no_durations() {
        let shape = sample().shape_text();
        assert!(shape.contains("solve/round.0001/lp 1\n"), "{shape}");
        assert!(!shape.contains("000000"), "durations leaked: {shape}");
    }

    #[test]
    fn chrome_trace_is_strict_json_with_nested_timeline() {
        let doc = sample().to_chrome_trace();
        validate(&doc).unwrap_or_else(|e| panic!("invalid chrome trace: {e}\n{doc}"));
        assert!(doc.contains("\"ph\": \"X\""));
        // The embed root precedes solve (name order) and solve's first
        // child starts at embed's end (50us).
        assert!(doc.contains("\"name\": \"embed\", \"ph\": \"X\", \"ts\": 0.000"));
        assert!(doc.contains("\"name\": \"solve\", \"ph\": \"X\", \"ts\": 50.000"));
        assert!(doc.contains("\"path\": \"solve/round.0001/lp\""));
    }

    #[test]
    fn empty_tree_exports_are_valid() {
        let t = SpanTree::new();
        assert!(t.is_empty());
        validate(&t.to_chrome_trace()).unwrap();
        assert_eq!(t.to_folded(), "");
        lint_folded(&t.to_folded()).unwrap();
        assert_eq!(t.shape_text(), "");
    }

    #[test]
    fn folded_output_passes_the_linter_and_uses_self_time() {
        let t = sample();
        let folded = t.to_folded();
        lint_folded(&folded).unwrap_or_else(|e| panic!("{e}\n{folded}"));
        // round.0001 self time = 600k - (400k + 150k) = 50k.
        assert!(folded.contains("solve;round.0001 50000\n"), "{folded}");
        // round.0002/lp is a leaf: self == total.
        assert!(folded.contains("solve;round.0002;lp 290000\n"), "{folded}");
    }

    #[test]
    fn folded_sanitizes_hostile_frame_names() {
        let mut t = SpanTree::new();
        t.record("bad name with spaces", 1, 10);
        let folded = t.to_folded();
        lint_folded(&folded).unwrap_or_else(|e| panic!("{e}\n{folded}"));
        assert!(folded.contains("bad_name_with_spaces 10"), "{folded}");
    }

    #[test]
    fn folded_linter_rejects_malformed_documents() {
        assert!(lint_folded("no-count-here\n").is_err());
        assert!(lint_folded("a;b 0\n").is_err());
        assert!(lint_folded("a;b -3\n").is_err());
        assert!(lint_folded("a; b 5\n").is_err());
        assert!(lint_folded("a;;b 5\n").is_err());
        assert!(lint_folded(" 5\n").is_err());
        lint_folded("a;b 5\nc 1\n\n").unwrap();
        lint_folded("").unwrap();
    }

    #[test]
    fn self_time_clamps_when_children_exceed_parent() {
        let mut t = SpanTree::new();
        t.record("p", 1, 100);
        t.record("p/c", 1, 150);
        assert_eq!(t.roots[0].self_ns(), 0);
        lint_folded(&t.to_folded()).unwrap();
    }
}
