//! Workspace-local stand-in for the slice of the `criterion` crate that the
//! LUBT bench suite uses.
//!
//! The build environment is offline, so the real `criterion` cannot be
//! fetched. This shim keeps every `benches/*.rs` file source-compatible
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) and
//! reports median wall-clock time per iteration to stdout. There is no
//! statistical analysis, HTML report, or regression detection — it is a
//! timing harness, not a statistics engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting `target_samples` samples of
    /// `iters_per_sample` iterations each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample.max(1));
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn report(group: Option<&str>, id: &str, bencher: &mut Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.median() {
        Some(t) => println!("bench {name:<50} {t:>12.3?}/iter"),
        None => println!("bench {name:<50} (no samples)"),
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark (ignored in
    /// `--test` mode, which always runs a single sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Runs `routine` with a [`Bencher`] and the borrowed `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_size,
        };
        routine(&mut b, input);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Runs an input-free benchmark inside the group.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_size,
        };
        routine(&mut b);
        report(Some(&self.name), &id.to_string(), &mut b);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op kept for source compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the process arguments, honoring upstream's `--test` flag
    /// (`cargo bench -- --test`): run every benchmark exactly once as a
    /// smoke test instead of collecting timing samples. This is what CI
    /// uses to exercise the bench suite cheaply.
    fn default() -> Self {
        Criterion {
            sample_size: 0,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Default number of timing samples per benchmark.
    const DEFAULT_SAMPLES: usize = 10;

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else if self.sample_size == 0 {
            Self::DEFAULT_SAMPLES
        } else {
            self.sample_size
        }
    }

    /// Starts a [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            test_mode,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.effective_samples(),
        };
        routine(&mut b);
        report(None, name, &mut b);
        self
    }
}

#[macro_export]
/// Collects benchmark functions under a group name, as upstream.
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
/// Generates `main` running the given groups, as upstream.
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("simplex", 16).to_string(), "simplex/16");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
                b.iter(|| x + 1);
                ran += 1;
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
        assert_eq!(ran, 1);
    }

    #[test]
    fn test_mode_forces_one_sample() {
        let c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        assert_eq!(c.effective_samples(), 1);
        let c = Criterion {
            sample_size: 0,
            test_mode: false,
        };
        assert_eq!(c.effective_samples(), Criterion::DEFAULT_SAMPLES);
        // Groups inherit the override and ignore sample_size() requests.
        let mut c = Criterion {
            sample_size: 0,
            test_mode: true,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(100);
        assert_eq!(g.sample_size, 1);
    }

    #[test]
    fn macros_compile() {
        fn inner(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| ()));
        }
        criterion_group!(benches, inner);
        benches();
    }
}
