//! Exact re-derivation of the §5 embedding's source-to-sink pathlengths.
//!
//! The solver reports per-edge wirelengths as `f64`; summing them again in
//! floats could mask a bound violation of the same magnitude as the
//! accumulated rounding. Here every pathlength is the *exact* dyadic sum
//! of its edge lengths, compared against `[l_i, u_i]` with only the
//! explicit `FEAS_EPS`-scale tolerance — zero rounding slop of the audit's
//! own making.

use lubt_lint::{Diagnostic, Level, Target};
use lubt_lp::FEAS_EPS;

use crate::exact::Rational;

/// Slug of embedded-tree findings (bad parent structure, negative or
/// geometrically impossible edges, out-of-window sink delays).
pub const PASS_TREE: &str = "audit-tree";

fn deny(message: String, targets: Vec<Target>) -> Diagnostic {
    Diagnostic {
        pass: PASS_TREE,
        level: Level::Deny,
        message,
        targets,
        help: None,
    }
}

/// Audits an embedded routing tree given as parallel node-indexed slices:
/// `parents[v]` is the parent of node `v` (ignored for `root`),
/// `lengths[v]` the length of the edge into `v` (entry `root` unused), and
/// `positions[v]` the embedded coordinates. Each `(node, lo, hi)` entry of
/// `sinks` must see an exact root-to-node pathlength inside `[lo, hi]`
/// (with `FEAS_EPS`-scale tolerance), and every edge must be at least the
/// Manhattan distance between its endpoints. Under the paper's linear
/// delay model the pathlength *is* the sink delay, so this check is the
/// delay-bound audit.
pub fn audit_tree(
    parents: &[usize],
    lengths: &[f64],
    positions: &[(f64, f64)],
    sinks: &[(usize, f64, f64)],
    root: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = parents.len();
    if lengths.len() != n || positions.len() != n || root >= n {
        out.push(deny(
            format!(
                "malformed tree: {} parents, {} lengths, {} positions, root {root}",
                n,
                lengths.len(),
                positions.len()
            ),
            vec![],
        ));
        return out;
    }
    if lengths.iter().any(|l| !l.is_finite())
        || positions
            .iter()
            .any(|p| !p.0.is_finite() || !p.1.is_finite())
    {
        out.push(deny(
            "tree carries non-finite lengths or positions".to_string(),
            vec![],
        ));
        return out;
    }

    // ---- Edge sanity: non-negative and at least the Manhattan span. ----
    for v in 0..n {
        if v == root {
            continue;
        }
        let p = parents[v];
        if p >= n {
            out.push(deny(
                format!("node {v} has out-of-range parent {p}"),
                vec![Target::Node(v)],
            ));
            continue;
        }
        if lengths[v] < -FEAS_EPS {
            out.push(deny(
                format!("edge into node {v} has negative length {}", lengths[v]),
                vec![Target::Edge(v)],
            ));
        }
        let (xv, yv) = positions[v];
        let (xp, yp) = positions[p];
        // Exact Manhattan distance vs exact edge length: the embedding may
        // detour (the LP pads edges to meet lower bounds) but can never be
        // shorter than the L1 span between its endpoints.
        let dx = Rational::from_f64(xv)
            .unwrap()
            .sub(&Rational::from_f64(xp).unwrap())
            .abs();
        let dy = Rational::from_f64(yv)
            .unwrap()
            .sub(&Rational::from_f64(yp).unwrap())
            .abs();
        let span = dx.add(&dy);
        let len = Rational::from_f64(lengths[v]).unwrap();
        let tol = Rational::from_f64(FEAS_EPS * (1.0 + lengths[v].abs())).unwrap();
        if len.add(&tol).cmp_val(&span) == std::cmp::Ordering::Less {
            out.push(deny(
                format!(
                    "edge into node {v} is shorter ({}) than the Manhattan span of its endpoints ({:.9e})",
                    lengths[v],
                    span.to_f64()
                ),
                vec![Target::Edge(v)],
            ));
        }
    }

    // ---- Exact root-to-node pathlengths with cycle detection. ----
    let mut path: Vec<Option<Rational>> = vec![None; n];
    path[root] = Some(Rational::zero());
    for start in 0..n {
        if path[start].is_some() {
            continue;
        }
        // Walk up to a node with a known pathlength, recording the chain.
        let mut chain = Vec::new();
        let mut cur = start;
        let mut on_chain = vec![false; 0];
        on_chain.resize(n, false);
        loop {
            if path[cur].is_some() {
                break;
            }
            if on_chain[cur] {
                out.push(deny(
                    format!("parent pointers cycle through node {cur}"),
                    vec![Target::Node(cur)],
                ));
                return out;
            }
            on_chain[cur] = true;
            chain.push(cur);
            let p = parents[cur];
            if p >= n {
                // Already reported above; give the chain a zero base so
                // the walk terminates.
                path[cur] = Some(Rational::zero());
                break;
            }
            cur = p;
        }
        for &v in chain.iter().rev() {
            if path[v].is_some() {
                continue;
            }
            let base = path[parents[v]].clone().expect("resolved before child");
            path[v] = Some(base.add(&Rational::from_f64(lengths[v]).unwrap()));
        }
    }

    // ---- Sink delay windows. ----
    for &(node, lo, hi) in sinks {
        if node >= n {
            out.push(deny(
                format!("sink entry references out-of-range node {node}"),
                vec![Target::Sink(node)],
            ));
            continue;
        }
        let d = path[node].clone().expect("all pathlengths resolved");
        // An infinite bound means "unbounded on that side" (e.g.
        // `DelayBounds::unbounded`) — nothing to check there, and it must
        // not poison the tolerance scale.
        let scale = [lo, hi]
            .into_iter()
            .filter(|b| b.is_finite())
            .fold(0.0f64, |a, b| a.max(b.abs()));
        let tol = Rational::from_f64(FEAS_EPS * (1.0 + scale)).unwrap();
        let lo_r = Rational::from_f64(lo);
        let hi_r = Rational::from_f64(hi);
        if lo_r.is_some_and(|lo_r| d.add(&tol).cmp_val(&lo_r) == std::cmp::Ordering::Less) {
            out.push(deny(
                format!(
                    "sink {node} arrives early: exact pathlength {:.9e} < lower bound {lo}",
                    d.to_f64()
                ),
                vec![Target::Sink(node)],
            ));
        }
        if hi_r.is_some_and(|hi_r| d.sub(&tol).cmp_val(&hi_r) == std::cmp::Ordering::Greater) {
            out.push(deny(
                format!(
                    "sink {node} arrives late: exact pathlength {:.9e} > upper bound {hi}",
                    d.to_f64()
                ),
                vec![Target::Sink(node)],
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // A 4-node path: root 0 at (0,0), node 1 at (1,0), node 2 at (1,1),
    // sink 3 at (2,1). Lengths match the Manhattan spans exactly.
    fn chain() -> (Vec<usize>, Vec<f64>, Vec<(f64, f64)>) {
        (
            vec![0, 0, 1, 2],
            vec![0.0, 1.0, 1.0, 1.0],
            vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0)],
        )
    }

    #[test]
    fn valid_tree_passes() {
        let (p, l, pos) = chain();
        let findings = audit_tree(&p, &l, &pos, &[(3, 2.5, 3.5)], 0);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn out_of_window_sink_is_rejected() {
        let (p, l, pos) = chain();
        let late = audit_tree(&p, &l, &pos, &[(3, 0.0, 2.0)], 0);
        assert!(late.iter().any(|d| d.message.contains("late")), "{late:?}");
        let early = audit_tree(&p, &l, &pos, &[(3, 4.0, 5.0)], 0);
        assert!(
            early.iter().any(|d| d.message.contains("early")),
            "{early:?}"
        );
    }

    #[test]
    fn short_edges_and_cycles_are_rejected() {
        let (p, mut l, pos) = chain();
        l[2] = 0.25; // shorter than the unit Manhattan span
        let findings = audit_tree(&p, &l, &pos, &[], 0);
        assert!(
            findings.iter().any(|d| d.message.contains("Manhattan")),
            "{findings:?}"
        );

        let cyc = audit_tree(
            &[0, 2, 1],
            &[0.0, 1.0, 1.0],
            &[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            &[],
            0,
        );
        assert!(cyc.iter().any(|d| d.message.contains("cycle")), "{cyc:?}");
    }

    #[test]
    fn unbounded_windows_are_skipped_not_flagged() {
        // `DelayBounds::unbounded` hands the auditor [0, +inf) windows; an
        // infinite bound is "nothing to check", never a violation.
        let (p, l, pos) = chain();
        let findings = audit_tree(&p, &l, &pos, &[(3, 0.0, f64::INFINITY)], 0);
        assert!(findings.is_empty(), "{findings:?}");
        let findings = audit_tree(&p, &l, &pos, &[(3, f64::NEG_INFINITY, 3.5)], 0);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detoured_edges_are_legal() {
        // The LP pads edges beyond the geometric span to satisfy lower
        // bounds; the auditor must accept that.
        let (p, mut l, pos) = chain();
        l[3] = 2.5;
        let findings = audit_tree(&p, &l, &pos, &[(3, 4.0, 5.0)], 0);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
