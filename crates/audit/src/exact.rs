//! Minimal exact arithmetic for certificate auditing: arbitrary-precision
//! integers and **dyadic rationals** (`num / 2^exp`).
//!
//! Every number the auditors touch — model coefficients, solution values,
//! duals, tolerances — is an `f64`, i.e. exactly a dyadic rational. Sums
//! and products of dyadics are dyadic, so residuals, reduced costs and
//! pathlengths can be evaluated with *zero* rounding error without ever
//! needing division or gcd reduction. This keeps the module a few hundred
//! lines of schoolbook arithmetic instead of a bignum library. (`BigUint`
//! does carry `div_rem`/`gcd` for downstream consumers — the DP backend's
//! reduced rationals — but the auditors themselves never divide.)

use std::cmp::Ordering;

/// Arbitrary-precision unsigned integer: little-endian `u32` limbs with no
/// trailing zero limbs (the canonical empty vector is zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// Converts from a machine integer.
    pub fn from_u64(v: u64) -> BigUint {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.trim();
        n
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Sum.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let s = long.limbs[i] as u64 + short.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            limbs.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut n = BigUint { limbs };
        n.trim();
        n
    }

    /// Difference; callers must guarantee `self >= other`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self.cmp_mag(other) != Ordering::Less);
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                limbs.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                limbs.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs };
        n.trim();
        n
    }

    /// Schoolbook product.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + limbs[i + j] as u64 + carry;
                limbs[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = limbs[k] as u64 + carry;
                limbs[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs };
        n.trim();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 32) as usize;
        let bit_shift = (bits % 32) as u32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.trim();
        n
    }

    /// Right shift by `bits` (low bits are discarded; normalization only
    /// ever shifts off zeros).
    pub fn shr(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / 32) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 32) as u32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (32 - bit_shift)));
            }
        }
        let mut n = BigUint { limbs };
        n.trim();
        n
    }

    /// Total bit length (0 for the zero value).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 32 + (32 - top.leading_zeros() as u64),
        }
    }

    /// Binary long division: returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics on a zero divisor.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut rem = self.clone();
        let mut quo = BigUint::zero();
        let mut den = divisor.shl(shift);
        let mut bit = shift as i64;
        while bit >= 0 {
            if rem.cmp_mag(&den) != Ordering::Less {
                rem = rem.sub(&den);
                quo = quo.add(&BigUint::from_u64(1).shl(bit as u64));
            }
            den = den.shr(1);
            bit -= 1;
        }
        (quo, rem)
    }

    /// Greatest common divisor (binary gcd); `gcd(0, b) = b`.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros();
        let zb = b.trailing_zeros();
        let shared = za.min(zb);
        a = a.shr(za);
        b = b.shr(zb);
        // Both odd from here on; the classic subtract-and-halve loop.
        loop {
            match a.cmp_mag(&b) {
                Ordering::Equal => return a.shl(shared),
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = a.sub(&b);
            a = a.shr(a.trailing_zeros());
        }
    }

    /// Number of trailing zero bits (0 for the zero value).
    pub fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * 32 + l.trailing_zeros() as u64;
            }
        }
        0
    }

    /// Approximate float image — for human-readable messages only.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 4_294_967_296.0 + l as f64;
        }
        v
    }
}

/// Arbitrary-precision signed integer (zero is never negative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigInt {
    neg: bool,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> BigInt {
        BigInt {
            neg: false,
            mag: BigUint::zero(),
        }
    }

    /// Builds from a sign and a magnitude.
    pub fn new(neg: bool, mag: BigUint) -> BigInt {
        let neg = neg && !mag.is_zero();
        BigInt { neg, mag }
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        if self.mag.is_zero() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Borrow of the magnitude — lets exact-arithmetic consumers (the DP
    /// backend's reduced rationals) divide and gcd-reduce without growing
    /// this module into a full bignum library.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt::new(!self.neg, self.mag.clone())
    }

    /// Sum.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.neg == other.neg {
            return BigInt::new(self.neg, self.mag.add(&other.mag));
        }
        match self.mag.cmp_mag(&other.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::new(self.neg, self.mag.sub(&other.mag)),
            Ordering::Less => BigInt::new(other.neg, other.mag.sub(&self.mag)),
        }
    }

    /// Difference.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Product.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt::new(self.neg != other.neg, self.mag.mul(&other.mag))
    }

    /// Left shift.
    pub fn shl(&self, bits: u64) -> BigInt {
        BigInt::new(self.neg, self.mag.shl(bits))
    }

    /// Signed comparison.
    pub fn cmp_val(&self, other: &BigInt) -> Ordering {
        match (self.signum(), other.signum()) {
            (a, b) if a != b => a.cmp(&b),
            (1, _) => self.mag.cmp_mag(&other.mag),
            (-1, _) => other.mag.cmp_mag(&self.mag),
            _ => Ordering::Equal,
        }
    }

    /// Approximate float image — for messages only.
    pub fn to_f64(&self) -> f64 {
        let v = self.mag.to_f64();
        if self.neg {
            -v
        } else {
            v
        }
    }
}

/// Exact dyadic rational `num / 2^exp`.
///
/// Closed under addition, subtraction and multiplication; every finite
/// `f64` converts **exactly** via [`Rational::from_f64`]. There is no
/// division — auditors phrase every check as a sign test on a dyadic
/// expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rational {
    num: BigInt,
    exp: u64,
}

impl Rational {
    /// Zero.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            exp: 0,
        }
    }

    /// Exact conversion of a finite float; `None` for NaN/infinities.
    pub fn from_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, e) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal (and the two zeros)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        if m == 0 {
            return Some(Rational::zero());
        }
        let r = if e >= 0 {
            Rational {
                num: BigInt::new(neg, BigUint::from_u64(m).shl(e as u64)),
                exp: 0,
            }
        } else {
            Rational {
                num: BigInt::new(neg, BigUint::from_u64(m)),
                exp: (-e) as u64,
            }
        };
        Some(r.normalized())
    }

    fn normalized(mut self) -> Rational {
        if self.num.is_zero() {
            self.exp = 0;
            return self;
        }
        let strip = self.exp.min(self.num.mag.trailing_zeros());
        if strip > 0 {
            self.num = BigInt::new(self.num.neg, self.num.mag.shr(strip));
            self.exp -= strip;
        }
        self
    }

    /// Sum.
    pub fn add(&self, other: &Rational) -> Rational {
        let exp = self.exp.max(other.exp);
        let a = self.num.shl(exp - self.exp);
        let b = other.num.shl(exp - other.exp);
        Rational {
            num: a.add(&b),
            exp,
        }
        .normalized()
    }

    /// Difference.
    pub fn sub(&self, other: &Rational) -> Rational {
        self.add(&other.neg())
    }

    /// Product.
    pub fn mul(&self, other: &Rational) -> Rational {
        Rational {
            num: self.num.mul(&other.num),
            exp: self.exp + other.exp,
        }
        .normalized()
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational {
            num: self.num.neg(),
            exp: self.exp,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: BigInt::new(false, self.num.mag.clone()),
            exp: self.exp,
        }
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Borrow of the numerator of the normalized form `num / 2^exp`.
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// The binary exponent of the normalized form `num / 2^exp`.
    pub fn exponent(&self) -> u64 {
        self.exp
    }

    /// Exact comparison.
    pub fn cmp_val(&self, other: &Rational) -> Ordering {
        let exp = self.exp.max(other.exp);
        let a = self.num.shl(exp - self.exp);
        let b = other.num.shl(exp - other.exp);
        a.cmp_val(&b)
    }

    /// `self <= other`, exactly.
    pub fn le(&self, other: &Rational) -> bool {
        self.cmp_val(other) != Ordering::Greater
    }

    /// `self >= other`, exactly.
    pub fn ge(&self, other: &Rational) -> bool {
        self.cmp_val(other) != Ordering::Less
    }

    /// Approximate float image — for human-readable messages only. Scaling
    /// happens in ≤512-bit steps so subnormal results underflow gradually
    /// instead of flushing to zero through an infinite intermediate.
    pub fn to_f64(&self) -> f64 {
        let mut v = self.num.to_f64();
        let mut e = self.exp;
        while e > 0 && v != 0.0 {
            let step = e.min(512);
            v *= 2.0f64.powi(-(step as i32));
            e -= step;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: f64) -> Rational {
        Rational::from_f64(x).unwrap()
    }

    #[test]
    fn f64_round_trips_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            1e300,
            -1e300,
            5e-324,
            f64::MIN_POSITIVE,
            12345.6789,
            2.0f64.powi(-60),
        ] {
            let q = r(x);
            assert_eq!(q.to_f64(), x, "round trip of {x}");
        }
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn exact_field_identities() {
        // 0.1 + 0.2 != 0.3 in f64, and the exact arithmetic must see the
        // float-level difference rather than the real-number identity. The
        // exact sum also differs from the *rounded* f64 sum, sitting within
        // one ulp of it.
        let lhs = r(0.1).add(&r(0.2));
        assert_ne!(lhs.cmp_val(&r(0.3)), Ordering::Equal);
        assert_ne!(lhs.cmp_val(&r(0.1 + 0.2)), Ordering::Equal);
        assert!(lhs.sub(&r(0.1 + 0.2)).abs().le(&r(1e-16)));
        // Dyadic values behave like reals.
        assert_eq!(r(0.5).add(&r(0.25)).cmp_val(&r(0.75)), Ordering::Equal);
        assert_eq!(r(1.5).mul(&r(-2.0)).cmp_val(&r(-3.0)), Ordering::Equal);
        assert!(r(3.0).sub(&r(3.0)).is_zero());
    }

    #[test]
    fn signs_and_comparisons() {
        assert_eq!(r(-2.5).signum(), -1);
        assert_eq!(r(0.0).signum(), 0);
        assert!(r(-1e-300).le(&Rational::zero()));
        assert!(r(1e-300).ge(&Rational::zero()));
        assert!(r(-3.0).abs().cmp_val(&r(3.0)) == Ordering::Equal);
        assert_eq!(
            r(2.0f64.powi(80)).add(&r(1.0)).sub(&r(1.0)).to_f64(),
            2.0f64.powi(80)
        );
    }

    #[test]
    fn biguint_carries_borrows_and_shifts() {
        let a = BigUint::from_u64(u64::MAX);
        let one = BigUint::from_u64(1);
        let sum = a.add(&one); // 2^64
        assert_eq!(sum.cmp_mag(&one.shl(64)), Ordering::Equal);
        assert_eq!(sum.sub(&one).cmp_mag(&a), Ordering::Equal);
        assert_eq!(sum.trailing_zeros(), 64);
        assert_eq!(sum.shr(64).cmp_mag(&one), Ordering::Equal);
        let p = a.mul(&a); // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = one.shl(128).sub(&one.shl(65)).add(&one);
        assert_eq!(p, expect);
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_u64(0).to_f64(), 0.0);
    }

    #[test]
    fn div_rem_inverts_mul_and_handles_edge_cases() {
        let a = BigUint::from_u64(0xdead_beef_cafe_f00d);
        let b = BigUint::from_u64(0x1234_5678);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a, "a = q*b + r");
        assert_eq!(r.cmp_mag(&b), Ordering::Less, "remainder < divisor");
        // Small / large, exact multiples, division by one.
        let (q, r) = b.div_rem(&a);
        assert!(q.is_zero() && r == b);
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&b);
        assert!(r.is_zero());
        assert_eq!(q, a);
        let (q, r) = a.div_rem(&BigUint::from_u64(1));
        assert!(r.is_zero());
        assert_eq!(q, a);
        // Multi-limb: (2^200 + 7) / 2^100.
        let big = BigUint::from_u64(1).shl(200).add(&BigUint::from_u64(7));
        let (q, r) = big.div_rem(&BigUint::from_u64(1).shl(100));
        assert_eq!(q, BigUint::from_u64(1).shl(100));
        assert_eq!(r, BigUint::from_u64(7));
        assert_eq!(big.bit_len(), 201);
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_matches_known_values() {
        let g = |a: u64, b: u64| {
            BigUint::from_u64(a)
                .gcd(&BigUint::from_u64(b))
                .cmp_mag(&BigUint::from_u64(num_gcd(a, b)))
        };
        fn num_gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        for (a, b) in [
            (0, 0),
            (0, 12),
            (12, 0),
            (12, 18),
            (17, 13),
            (1 << 40, 3 << 20),
            (u64::MAX, u64::MAX - 1),
            (360, 48),
        ] {
            assert_eq!(g(a, b), Ordering::Equal, "gcd({a}, {b})");
        }
        // Multi-limb: gcd(2^100 * 3, 2^60 * 9) = 2^60 * 3.
        let a = BigUint::from_u64(3).shl(100);
        let b = BigUint::from_u64(9).shl(60);
        assert_eq!(
            a.gcd(&b).cmp_mag(&BigUint::from_u64(3).shl(60)),
            Ordering::Equal
        );
    }

    #[test]
    fn bigint_magnitude_is_the_unsigned_part() {
        let n = BigInt::new(true, BigUint::from_u64(42));
        assert_eq!(
            n.magnitude().cmp_mag(&BigUint::from_u64(42)),
            Ordering::Equal
        );
        assert_eq!(n.signum(), -1);
    }

    #[test]
    fn long_dot_products_stay_exact() {
        // sum of k * 2^-k for k = 1..=200, evaluated exactly twice in
        // different orders, must agree bit-for-bit.
        let mut fwd = Rational::zero();
        let mut rev = Rational::zero();
        for k in 1..=200u32 {
            fwd = fwd.add(&r(k as f64).mul(&r(2.0f64.powi(-(k as i32)))));
        }
        for k in (1..=200u32).rev() {
            rev = rev.add(&r(k as f64).mul(&r(2.0f64.powi(-(k as i32)))));
        }
        assert_eq!(fwd.cmp_val(&rev), Ordering::Equal);
        assert!(!fwd.is_zero());
    }
}
