//! Exact verification of LP solve outcomes against their certificates.
//!
//! All residuals, reduced costs and complementary-slackness products are
//! evaluated in exact dyadic-rational arithmetic ([`crate::exact`]); the
//! only floats involved are the *tolerances*, which are computed
//! scale-aware in `f64` and then converted exactly. A check therefore
//! never suffers rounding of its own — it either proves the inequality or
//! exhibits the violation.

use std::fmt::Write as _;

use lubt_lint::{Diagnostic, Level, Target};
use lubt_lp::{Certificate, Cmp, ColumnRole, Model, OptimalityCertificate, Solution, Status};

use crate::exact::Rational;

/// Slug of primal-feasibility findings (row residual or bound violation).
pub const PASS_PRIMAL: &str = "audit-primal-feasibility";
/// Slug of dual-feasibility findings (sign, reduced cost, malformed basis).
pub const PASS_DUAL: &str = "audit-dual-feasibility";
/// Slug of complementary-slackness findings.
pub const PASS_CS: &str = "audit-complementary-slackness";
/// Slug of objective-mismatch findings.
pub const PASS_OBJECTIVE: &str = "audit-objective";
/// Slug of Farkas-ray findings (an invalid infeasibility proof).
pub const PASS_FARKAS: &str = "audit-farkas";
/// Slug reported when a solve outcome carries no checkable certificate.
pub const PASS_MISSING: &str = "audit-certificate-missing";

fn deny(pass: &'static str, message: String, targets: Vec<Target>) -> Diagnostic {
    Diagnostic {
        pass,
        level: Level::Deny,
        message,
        targets,
        help: None,
    }
}

/// Exact conversion helper: a non-finite number in a certificate or
/// solution is itself a finding.
fn rat(x: f64, what: &str, pass: &'static str, out: &mut Vec<Diagnostic>) -> Rational {
    match Rational::from_f64(x) {
        Some(r) => r,
        None => {
            out.push(deny(pass, format!("{what} is non-finite ({x})"), vec![]));
            Rational::zero()
        }
    }
}

/// Audits a claimed-optimal solution against its certificate: primal
/// feasibility, dual feasibility, complementary slackness, and the
/// objective value, all in exact arithmetic. An empty return means every
/// check passed.
pub fn audit_optimality(
    model: &Model,
    values: &[f64],
    objective: f64,
    cert: &OptimalityCertificate,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let m = model.num_constraints();
    let n = model.num_vars();

    // ---- Certificate well-formedness. ----
    if values.len() != n {
        out.push(deny(
            PASS_PRIMAL,
            format!("solution has {} values for {} variables", values.len(), n),
            vec![],
        ));
        return out;
    }
    if cert.basis.len() != m || cert.duals.len() != m {
        out.push(deny(
            PASS_DUAL,
            format!(
                "certificate shape mismatch: basis {} / duals {} for {} rows",
                cert.basis.len(),
                cert.duals.len(),
                m
            ),
            vec![],
        ));
        return out;
    }
    for (k, role) in cert.basis.iter().enumerate() {
        let bad = match *role {
            ColumnRole::Structural(j) => j >= n,
            ColumnRole::Artificial(i) => i >= m,
            ColumnRole::Slack(i) => i >= m || model.constraints()[i].cmp() == Cmp::Eq,
        };
        if bad {
            out.push(deny(
                PASS_DUAL,
                format!("basis position {k} holds invalid column {role:?}"),
                vec![],
            ));
        }
    }
    if !out.is_empty() {
        return out;
    }
    if values.iter().any(|v| !v.is_finite()) || !objective.is_finite() {
        out.push(deny(
            PASS_PRIMAL,
            "solution carries non-finite values".to_string(),
            vec![],
        ));
        return out;
    }
    if cert.duals.iter().any(|y| !y.is_finite()) {
        out.push(deny(
            PASS_DUAL,
            "certificate duals carry non-finite values".to_string(),
            vec![],
        ));
        return out;
    }

    let xr: Vec<Rational> = values
        .iter()
        .map(|&v| Rational::from_f64(v).expect("checked finite"))
        .collect();
    let yr: Vec<Rational> = cert
        .duals
        .iter()
        .map(|&y| Rational::from_f64(y).expect("checked finite"))
        .collect();

    // ---- Primal feasibility + row complementary slackness. ----
    for (i, con) in model.constraints().iter().enumerate() {
        let mut activity = Rational::zero();
        let mut mass = 0.0f64;
        for &(v, coef) in con.expr().terms() {
            let c = rat(coef, "constraint coefficient", PASS_PRIMAL, &mut out);
            activity = activity.add(&c.mul(&xr[v.index()]));
            mass += (coef * values[v.index()]).abs();
        }
        let rhs = rat(con.rhs(), "constraint rhs", PASS_PRIMAL, &mut out);
        let slack = rhs.sub(&activity); // rhs - a·x
        let tol = rat(
            1e-6 * (1.0 + con.rhs().abs() + mass),
            "tolerance",
            PASS_PRIMAL,
            &mut out,
        );
        let violated = match con.cmp() {
            Cmp::Le => slack.add(&tol).signum() < 0,
            Cmp::Ge => slack.sub(&tol).signum() > 0,
            Cmp::Eq => slack.abs().cmp_val(&tol) == std::cmp::Ordering::Greater,
        };
        if violated {
            let mut msg = format!(
                "row {i} violated exactly: activity - rhs = {:.3e}",
                slack.neg().to_f64()
            );
            let _ = write!(
                msg,
                " (tolerance {:.3e})",
                1e-6 * (1.0 + con.rhs().abs() + mass)
            );
            out.push(deny(PASS_PRIMAL, msg, vec![Target::Row(i)]));
        }

        // Complementary slackness: y_i * (rhs_i - a_i x) must vanish.
        let p = yr[i].mul(&slack);
        let cs_tol = rat(
            1e-5 * (1.0 + cert.duals[i].abs()) * (1.0 + con.rhs().abs() + mass),
            "tolerance",
            PASS_CS,
            &mut out,
        );
        if p.abs().cmp_val(&cs_tol) == std::cmp::Ordering::Greater {
            out.push(deny(
                PASS_CS,
                format!(
                    "row {i}: dual {:.3e} times slack {:.3e} is nonzero exactly",
                    cert.duals[i],
                    slack.to_f64()
                ),
                vec![Target::Row(i)],
            ));
        }
    }

    // ---- Variable lower bounds. ----
    for var in model.vars() {
        let j = var.index();
        let lb = model.lower_bound(var);
        let tol = rat(1e-7 * (1.0 + lb.abs()), "tolerance", PASS_PRIMAL, &mut out);
        let lbr = rat(lb, "lower bound", PASS_PRIMAL, &mut out);
        if xr[j].add(&tol).cmp_val(&lbr) == std::cmp::Ordering::Less {
            out.push(deny(
                PASS_PRIMAL,
                format!(
                    "variable {j} = {:.6e} sits below its lower bound {lb}",
                    values[j]
                ),
                vec![],
            ));
        }
    }

    // ---- Objective recomputation. ----
    let mut obj = Rational::zero();
    for var in model.vars() {
        let c = rat(
            model.cost(var),
            "objective coefficient",
            PASS_OBJECTIVE,
            &mut out,
        );
        obj = obj.add(&c.mul(&xr[var.index()]));
    }
    let claimed = rat(objective, "objective", PASS_OBJECTIVE, &mut out);
    let obj_tol = rat(
        1e-6 * (1.0 + objective.abs()),
        "tolerance",
        PASS_OBJECTIVE,
        &mut out,
    );
    if obj.sub(&claimed).abs().cmp_val(&obj_tol) == std::cmp::Ordering::Greater {
        out.push(deny(
            PASS_OBJECTIVE,
            format!(
                "claimed objective {objective} but exact recomputation gives {:.9e}",
                obj.to_f64()
            ),
            vec![],
        ));
    }

    // ---- Dual feasibility: sign conditions. ----
    let y_max = cert.duals.iter().fold(0.0f64, |a, y| a.max(y.abs()));
    let tol_y = rat(1e-7 * (1.0 + y_max), "tolerance", PASS_DUAL, &mut out);
    for (i, con) in model.constraints().iter().enumerate() {
        let bad = match con.cmp() {
            // Minimization with `>=` rows: duals are non-negative; `<=`
            // rows: non-positive; equalities are free.
            Cmp::Ge => yr[i].add(&tol_y).signum() < 0,
            Cmp::Le => yr[i].sub(&tol_y).signum() > 0,
            Cmp::Eq => false,
        };
        if bad {
            out.push(deny(
                PASS_DUAL,
                format!(
                    "row {i} ({:?}) has wrong-signed dual {:.6e}",
                    con.cmp(),
                    cert.duals[i]
                ),
                vec![Target::Row(i)],
            ));
        }
    }

    // ---- Reduced costs (d_j = c_j - a_j·y >= 0) + variable CS. ----
    let mut aty: Vec<Rational> = vec![Rational::zero(); n];
    let mut aty_mass = vec![0.0f64; n];
    for (i, con) in model.constraints().iter().enumerate() {
        for &(v, coef) in con.expr().terms() {
            let c = rat(coef, "constraint coefficient", PASS_DUAL, &mut out);
            aty[v.index()] = aty[v.index()].add(&c.mul(&yr[i]));
            aty_mass[v.index()] += (coef * cert.duals[i]).abs();
        }
    }
    for var in model.vars() {
        let j = var.index();
        let cj = model.cost(var);
        let d = rat(cj, "objective coefficient", PASS_DUAL, &mut out).sub(&aty[j]);
        let tol_j = rat(
            1e-6 * (1.0 + cj.abs() + aty_mass[j]),
            "tolerance",
            PASS_DUAL,
            &mut out,
        );
        if d.add(&tol_j).signum() < 0 {
            out.push(deny(
                PASS_DUAL,
                format!(
                    "variable {j} has negative reduced cost {:.6e} exactly",
                    d.to_f64()
                ),
                vec![],
            ));
        }
        // Variable-side complementary slackness: d_j * (x_j - l_j) = 0.
        let gap = xr[j].sub(&rat(
            model.lower_bound(var),
            "lower bound",
            PASS_CS,
            &mut out,
        ));
        let q = d.mul(&gap);
        let cs_tol = rat(
            1e-5 * (1.0 + (values[j] - model.lower_bound(var)).abs())
                * (1.0 + cj.abs() + aty_mass[j]),
            "tolerance",
            PASS_CS,
            &mut out,
        );
        if q.abs().cmp_val(&cs_tol) == std::cmp::Ordering::Greater {
            out.push(deny(
                PASS_CS,
                format!(
                    "variable {j}: reduced cost {:.3e} times bound gap {:.3e} is nonzero exactly",
                    d.to_f64(),
                    gap.to_f64()
                ),
                vec![],
            ));
        }
    }

    out
}

/// Audits primal feasibility and the objective only — the certificate-free
/// subset used for interior-point solutions, which carry no exact basis.
pub fn audit_primal(model: &Model, values: &[f64], objective: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = model.num_vars();
    if values.len() != n {
        out.push(deny(
            PASS_PRIMAL,
            format!("solution has {} values for {} variables", values.len(), n),
            vec![],
        ));
        return out;
    }
    if values.iter().any(|v| !v.is_finite()) || !objective.is_finite() {
        out.push(deny(
            PASS_PRIMAL,
            "solution carries non-finite values".to_string(),
            vec![],
        ));
        return out;
    }
    let xr: Vec<Rational> = values
        .iter()
        .map(|&v| Rational::from_f64(v).expect("checked finite"))
        .collect();
    for (i, con) in model.constraints().iter().enumerate() {
        let mut activity = Rational::zero();
        let mut mass = 0.0f64;
        for &(v, coef) in con.expr().terms() {
            let c = rat(coef, "constraint coefficient", PASS_PRIMAL, &mut out);
            activity = activity.add(&c.mul(&xr[v.index()]));
            mass += (coef * values[v.index()]).abs();
        }
        let rhs = rat(con.rhs(), "constraint rhs", PASS_PRIMAL, &mut out);
        let slack = rhs.sub(&activity);
        let tol = rat(
            1e-6 * (1.0 + con.rhs().abs() + mass),
            "tolerance",
            PASS_PRIMAL,
            &mut out,
        );
        let violated = match con.cmp() {
            Cmp::Le => slack.add(&tol).signum() < 0,
            Cmp::Ge => slack.sub(&tol).signum() > 0,
            Cmp::Eq => slack.abs().cmp_val(&tol) == std::cmp::Ordering::Greater,
        };
        if violated {
            out.push(deny(
                PASS_PRIMAL,
                format!(
                    "row {i} violated exactly: activity - rhs = {:.3e}",
                    slack.neg().to_f64()
                ),
                vec![Target::Row(i)],
            ));
        }
    }
    for var in model.vars() {
        let j = var.index();
        let lb = model.lower_bound(var);
        let tol = rat(1e-7 * (1.0 + lb.abs()), "tolerance", PASS_PRIMAL, &mut out);
        let lbr = rat(lb, "lower bound", PASS_PRIMAL, &mut out);
        if xr[j].add(&tol).cmp_val(&lbr) == std::cmp::Ordering::Less {
            out.push(deny(
                PASS_PRIMAL,
                format!(
                    "variable {j} = {:.6e} sits below its lower bound {lb}",
                    values[j]
                ),
                vec![],
            ));
        }
    }
    let mut obj = Rational::zero();
    for var in model.vars() {
        let c = rat(
            model.cost(var),
            "objective coefficient",
            PASS_OBJECTIVE,
            &mut out,
        );
        obj = obj.add(&c.mul(&xr[var.index()]));
    }
    let claimed = rat(objective, "objective", PASS_OBJECTIVE, &mut out);
    let obj_tol = rat(
        1e-6 * (1.0 + objective.abs()),
        "tolerance",
        PASS_OBJECTIVE,
        &mut out,
    );
    if obj.sub(&claimed).abs().cmp_val(&obj_tol) == std::cmp::Ordering::Greater {
        out.push(deny(
            PASS_OBJECTIVE,
            format!(
                "claimed objective {objective} but exact recomputation gives {:.9e}",
                obj.to_f64()
            ),
            vec![],
        ));
    }
    out
}

/// Audits a Farkas infeasibility certificate: with the variable shift
/// `x = x' + lb` (`x' >= 0`) and shifted rhs `b'_i = rhs_i - a_i·lb`, a
/// valid ray satisfies the sign conditions (`r_i <= 0` on `<=` rows,
/// `r_i >= 0` on `>=` rows), drives every column non-positive
/// (`sum_i r_i a_ij <= 0`), and achieves a strictly positive gap
/// `sum_i r_i b'_i > 0` — which proves the feasible region empty.
pub fn audit_farkas(model: &Model, ray: &[f64]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let m = model.num_constraints();
    if ray.len() != m {
        out.push(deny(
            PASS_FARKAS,
            format!("Farkas ray has {} entries for {} rows", ray.len(), m),
            vec![],
        ));
        return out;
    }
    if ray.iter().any(|r| !r.is_finite()) {
        out.push(deny(
            PASS_FARKAS,
            "Farkas ray carries non-finite entries".to_string(),
            vec![],
        ));
        return out;
    }
    let rr: Vec<Rational> = ray
        .iter()
        .map(|&r| Rational::from_f64(r).expect("checked finite"))
        .collect();

    // ---- Sign conditions. ----
    let r_max = ray.iter().fold(0.0f64, |a, r| a.max(r.abs()));
    let tol_sign = rat(1e-9 * (1.0 + r_max), "tolerance", PASS_FARKAS, &mut out);
    for (i, con) in model.constraints().iter().enumerate() {
        let bad = match con.cmp() {
            Cmp::Le => rr[i].sub(&tol_sign).signum() > 0,
            Cmp::Ge => rr[i].add(&tol_sign).signum() < 0,
            Cmp::Eq => false,
        };
        if bad {
            out.push(deny(
                PASS_FARKAS,
                format!(
                    "ray entry {i} has the wrong sign for a {:?} row: {:.6e}",
                    con.cmp(),
                    ray[i]
                ),
                vec![Target::Row(i)],
            ));
        }
    }

    // ---- Column condition: sum_i r_i a_ij <= 0 for every variable. ----
    let n = model.num_vars();
    let mut col = vec![Rational::zero(); n];
    let mut col_mass = vec![0.0f64; n];
    for (i, con) in model.constraints().iter().enumerate() {
        for &(v, coef) in con.expr().terms() {
            let c = rat(coef, "constraint coefficient", PASS_FARKAS, &mut out);
            col[v.index()] = col[v.index()].add(&c.mul(&rr[i]));
            col_mass[v.index()] += (coef * ray[i]).abs();
        }
    }
    for j in 0..n {
        let tol_j = rat(
            1e-6 * (1.0 + col_mass[j]),
            "tolerance",
            PASS_FARKAS,
            &mut out,
        );
        if col[j].sub(&tol_j).signum() > 0 {
            out.push(deny(
                PASS_FARKAS,
                format!(
                    "ray fails the column condition on variable {j}: sum r_i a_ij = {:.6e} > 0",
                    col[j].to_f64()
                ),
                vec![],
            ));
        }
    }

    // ---- Strictly positive gap on the shifted rhs. ----
    let mut gap = Rational::zero();
    let mut gap_f64 = 0.0f64;
    let mut mass = 0.0f64;
    for (i, con) in model.constraints().iter().enumerate() {
        let mut shifted = rat(con.rhs(), "constraint rhs", PASS_FARKAS, &mut out);
        let mut shifted_f64 = con.rhs();
        for &(v, coef) in con.expr().terms() {
            let c = rat(coef, "constraint coefficient", PASS_FARKAS, &mut out);
            let lb = rat(model.lower_bound(v), "lower bound", PASS_FARKAS, &mut out);
            shifted = shifted.sub(&c.mul(&lb));
            shifted_f64 -= coef * model.lower_bound(v);
        }
        gap = gap.add(&rr[i].mul(&shifted));
        gap_f64 += ray[i] * shifted_f64;
        mass += (ray[i] * shifted_f64).abs();
    }
    if gap.signum() <= 0 || gap_f64 < 1e-9 * (1.0 + mass) {
        out.push(deny(
            PASS_FARKAS,
            format!(
                "ray proves nothing: gap sum r_i b'_i = {:.6e} is not decisively positive",
                gap.to_f64()
            ),
            vec![],
        ));
    }

    out
}

/// Dispatches on the solve outcome: optimal solutions are audited against
/// an optimality certificate, infeasible outcomes against a Farkas ray; an
/// absent or mismatched certificate is itself a deny-level finding.
/// Unbounded outcomes carry no certificate and audit vacuously.
pub fn audit_solution(
    model: &Model,
    solution: &Solution,
    cert: Option<&Certificate>,
) -> Vec<Diagnostic> {
    match (solution.status(), cert) {
        (Status::Optimal, Some(Certificate::Optimality(c))) => {
            audit_optimality(model, solution.values(), solution.objective(), c)
        }
        (Status::Infeasible, Some(Certificate::Farkas(f))) => audit_farkas(model, &f.ray),
        (Status::Unbounded, _) => Vec::new(),
        (status, got) => vec![deny(
            PASS_MISSING,
            format!(
                "{status:?} outcome has no matching certificate ({})",
                match got {
                    None => "none attached",
                    Some(Certificate::Optimality(_)) => "got optimality proof",
                    Some(Certificate::Farkas(_)) => "got Farkas ray",
                }
            ),
            vec![],
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lubt_lp::{LinExpr, LpSolve, RevisedSolver, SimplexSolver};

    fn model_2var() -> Model {
        // min x + 2y  s.t.  x + y >= 3, x <= 2, bounds x,y >= 0.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 2.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 3.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 2.0);
        m
    }

    #[test]
    fn dense_optimal_certificate_verifies() {
        let m = model_2var();
        let (s, cert) = SimplexSolver::new().solve_certified(&m).unwrap();
        let findings = audit_solution(&m, &s, cert.as_ref());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn revised_optimal_certificate_verifies() {
        let m = model_2var();
        let (s, cert) = RevisedSolver::new().solve_certified(&m).unwrap();
        let findings = audit_solution(&m, &s, cert.as_ref());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn farkas_certificates_verify_on_both_backends() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 3.0);
        for (s, cert) in [
            SimplexSolver::new().solve_certified(&m).unwrap(),
            RevisedSolver::new().solve_certified(&m).unwrap(),
        ] {
            assert_eq!(s.status(), Status::Infeasible);
            let findings = audit_solution(&m, &s, cert.as_ref());
            assert!(findings.is_empty(), "{findings:?}");
        }
    }

    #[test]
    fn corrupted_solution_is_rejected() {
        let m = model_2var();
        let (s, cert) = SimplexSolver::new().solve_certified(&m).unwrap();
        let Some(Certificate::Optimality(c)) = cert else {
            panic!("expected optimality certificate");
        };
        // Corrupt the primal point: violates row 0 exactly.
        let mut bad = s.values().to_vec();
        bad[0] = 0.0;
        bad[1] = 0.0;
        let findings = audit_optimality(&m, &bad, 0.0, &c);
        assert!(
            findings
                .iter()
                .any(|d| d.pass == PASS_PRIMAL && d.is_deny()),
            "{findings:?}"
        );
    }

    #[test]
    fn corrupted_duals_are_rejected() {
        let m = model_2var();
        let (s, cert) = SimplexSolver::new().solve_certified(&m).unwrap();
        let Some(Certificate::Optimality(mut c)) = cert else {
            panic!("expected optimality certificate");
        };
        // Wrong-signed dual on the Ge row.
        c.duals[0] = -5.0;
        let findings = audit_optimality(&m, s.values(), s.objective(), &c);
        assert!(
            findings.iter().any(|d| d.pass == PASS_DUAL && d.is_deny()),
            "{findings:?}"
        );
    }

    #[test]
    fn corrupted_farkas_ray_is_rejected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 3.0);
        // Zero ray: gap is not positive.
        let findings = audit_farkas(&m, &[0.0, 0.0]);
        assert!(
            findings
                .iter()
                .any(|d| d.pass == PASS_FARKAS && d.is_deny()),
            "{findings:?}"
        );
        // Wrong-signed multiplier on the Le row.
        let findings = audit_farkas(&m, &[1.0, 2.0]);
        assert!(
            findings
                .iter()
                .any(|d| d.pass == PASS_FARKAS && d.is_deny()),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_certificate_is_a_finding() {
        let m = model_2var();
        let s = SimplexSolver::new().solve(&m).unwrap();
        let findings = audit_solution(&m, &s, None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pass, PASS_MISSING);
        assert!(findings[0].is_deny());
    }

    #[test]
    fn interior_point_solutions_audit_primal_only() {
        let m = model_2var();
        let s = lubt_lp::InteriorPointSolver::new().solve(&m).unwrap();
        let findings = audit_primal(&m, s.values(), s.objective());
        assert!(findings.is_empty(), "{findings:?}");
        let findings = audit_primal(&m, &[0.0, 0.0], 0.0);
        assert!(findings.iter().any(|d| d.pass == PASS_PRIMAL));
    }

    #[test]
    fn session_certificates_survive_warm_cut_rounds() {
        use lubt_lp::{RevisedSession, SimplexSession};
        // Grow a model across two cut rounds and audit the final
        // certificate from each session flavor.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0), (y, 1.0)]), Cmp::Ge, 4.0);

        let mut dense = SimplexSession::start(m.clone()).unwrap();
        dense
            .add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 3.0)
            .unwrap();
        dense.resolve().unwrap();
        dense
            .add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Ge, 1.5)
            .unwrap();
        let sol = dense.resolve().unwrap().clone();
        let cert = dense.certificate().expect("optimal session certifies");
        let findings = audit_solution(dense.model(), &sol, Some(&cert));
        assert!(findings.is_empty(), "dense session: {findings:?}");

        let mut sparse = RevisedSession::start(m).unwrap();
        sparse
            .add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 3.0)
            .unwrap();
        sparse.resolve().unwrap();
        sparse
            .add_constraint(LinExpr::from_terms([(y, 1.0)]), Cmp::Ge, 1.5)
            .unwrap();
        let sol = sparse.resolve().unwrap().clone();
        let cert = sparse.certificate().expect("optimal session certifies");
        let findings = audit_solution(sparse.model(), &sol, Some(&cert));
        assert!(findings.is_empty(), "revised session: {findings:?}");
    }

    #[test]
    fn session_infeasibility_yields_a_verifying_farkas_ray() {
        use lubt_lp::{RevisedSession, SimplexSession};
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Le, 3.0);

        let mut dense = SimplexSession::start(m.clone()).unwrap();
        dense
            .add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 5.0)
            .unwrap();
        assert_eq!(dense.resolve().unwrap().status(), Status::Infeasible);
        let Some(Certificate::Farkas(f)) = dense.certificate() else {
            panic!("dense session must produce a Farkas ray");
        };
        let findings = audit_farkas(dense.model(), &f.ray);
        assert!(findings.is_empty(), "dense session ray: {findings:?}");

        let mut sparse = RevisedSession::start(m).unwrap();
        sparse
            .add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 5.0)
            .unwrap();
        assert_eq!(sparse.resolve().unwrap().status(), Status::Infeasible);
        let Some(Certificate::Farkas(f)) = sparse.certificate() else {
            panic!("revised session must produce a Farkas ray");
        };
        let findings = audit_farkas(sparse.model(), &f.ray);
        assert!(findings.is_empty(), "revised session ray: {findings:?}");
    }
}
