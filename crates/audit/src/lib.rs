//! Post-solve static analysis for LUBT: **exact rational certificate
//! auditing**.
//!
//! Both LP backends share the simplex family and `f64` arithmetic, so a
//! common-mode numerical bug is invisible to differential tests. This
//! crate closes that gap from the checking side: every solve outcome is
//! verified against a proof object — an optimality certificate (basis +
//! duals) or a Farkas infeasibility ray — using exact dyadic-rational
//! arithmetic, without re-solving anything. The §5 embedding is audited
//! the same way: pathlengths are re-derived exactly and compared against
//! each sink's `[l_i, u_i]` window.
//!
//! Findings surface as [`lubt_lint::Diagnostic`]s under `audit-*` slugs;
//! an empty result means the output is proven consistent to the stated
//! tolerances. The auditors never mutate or re-solve — they are pure
//! functions of (model, claimed output, certificate).
//!
//! # Example
//!
//! ```
//! use lubt_audit::audit_solution;
//! use lubt_lp::{Cmp, LinExpr, Model, SimplexSolver};
//!
//! let mut m = Model::new();
//! let x = m.add_var(0.0, 1.0);
//! m.add_constraint(LinExpr::from_terms([(x, 1.0)]), Cmp::Ge, 2.0);
//! let (solution, cert) = SimplexSolver::new().solve_certified(&m)?;
//! let findings = audit_solution(&m, &solution, cert.as_ref());
//! assert!(findings.is_empty());
//! # Ok::<(), lubt_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
mod lp_audit;
mod tree;

pub use exact::{BigInt, BigUint, Rational};
pub use lp_audit::{
    audit_farkas, audit_optimality, audit_primal, audit_solution, PASS_CS, PASS_DUAL, PASS_FARKAS,
    PASS_MISSING, PASS_OBJECTIVE, PASS_PRIMAL,
};
pub use tree::{audit_tree, PASS_TREE};
