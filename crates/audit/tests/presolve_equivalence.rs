//! Presolve equivalence under exact auditing.
//!
//! The presolve reductions (row dedup, binding-rhs merge, trivial-row
//! resolution) must be *invisible* to the solver's answer: raw and reduced
//! models agree on status and objective to 1e-9, and — the stronger claim —
//! both produce certificates that verify in exact rational arithmetic. A
//! presolve bug that nudged a rhs or dropped a binding row would surface
//! here as a certificate that no longer proves anything.

use lubt_audit::audit_solution;
use lubt_lp::{presolve, Cmp, LinExpr, Model, Presolved, RevisedSolver, SimplexSolver, Status};
use proptest::prelude::*;

/// A covering LP (`min c'x, A x >= b`, `A >= 0`, `c > 0` — always feasible
/// and bounded) with deliberately duplicated rows as presolve fodder.
fn covering_model(
    rows: &[(Vec<u8>, f64)],
    dups: &[(usize, f64)],
    costs: &[f64],
    n: usize,
) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|i| m.add_var(0.0, costs[i])).collect();
    let mut added: Vec<(LinExpr, f64)> = Vec::new();
    for (coefs, rhs) in rows {
        let e: LinExpr = vars
            .iter()
            .enumerate()
            .filter(|&(i, _)| coefs[i] > 0)
            .map(|(i, &v)| (v, f64::from(coefs[i])))
            .collect();
        if e.terms().is_empty() {
            continue;
        }
        m.add_constraint(e.clone(), Cmp::Ge, *rhs);
        added.push((e, *rhs));
    }
    for &(k, shift) in dups {
        if added.is_empty() {
            break;
        }
        let (e, rhs) = &added[k % added.len()];
        m.add_constraint(e.clone(), Cmp::Ge, rhs + shift);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presolve_preserves_status_objective_and_certificates(
        n in 2usize..6,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u8..3, 6), 1.0..9.0f64), 1..6),
        dups in proptest::collection::vec((0usize..8, -2.0..2.0f64), 0..4),
        costs in proptest::collection::vec(0.5..3.0f64, 6),
    ) {
        let m = covering_model(&rows, &dups, &costs, n);
        prop_assume!(m.num_constraints() > 0);
        let reduced = match presolve(&m) {
            Presolved::Reduced { model, .. } => model,
            Presolved::Infeasible => unreachable!("covering LPs are feasible"),
        };
        for backend in ["simplex", "revised"] {
            let solve = |mm: &Model| {
                if backend == "simplex" {
                    SimplexSolver::new().solve_certified(mm).unwrap()
                } else {
                    RevisedSolver::new().solve_certified(mm).unwrap()
                }
            };
            let (raw, raw_cert) = solve(&m);
            let (red, red_cert) = solve(&reduced);
            prop_assert_eq!(raw.status(), Status::Optimal, "{}", backend);
            prop_assert_eq!(red.status(), Status::Optimal, "{}", backend);
            let scale = 1.0 + raw.objective().abs();
            prop_assert!(
                (raw.objective() - red.objective()).abs() / scale < 1e-9,
                "{}: raw {} vs presolved {}",
                backend, raw.objective(), red.objective()
            );
            let f = audit_solution(&m, &raw, raw_cert.as_ref());
            prop_assert!(f.is_empty(), "{}: raw audit {:?}", backend, f);
            let f = audit_solution(&reduced, &red, red_cert.as_ref());
            prop_assert!(f.is_empty(), "{}: presolved audit {:?}", backend, f);
        }
    }

    #[test]
    fn presolve_preserves_infeasibility_with_verifying_rays(
        n in 1usize..4,
        gap in 0.5..5.0f64,
        cap in 1.0..10.0f64,
        dup in 0usize..3,
    ) {
        // `x0 <= cap` (several copies) against `x0 >= cap + gap`: infeasible,
        // but never *detected* by presolve (the senses differ), so both the
        // raw and reduced models must hand the solver an exactly verifying
        // Farkas ray.
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|_| m.add_var(0.0, 1.0)).collect();
        for _ in 0..=dup {
            m.add_constraint(LinExpr::from_terms([(vars[0], 1.0)]), Cmp::Le, cap);
        }
        m.add_constraint(LinExpr::from_terms([(vars[0], 1.0)]), Cmp::Ge, cap + gap);
        let reduced = match presolve(&m) {
            Presolved::Reduced { model, .. } => model,
            Presolved::Infeasible => unreachable!("presolve cannot cross senses"),
        };
        prop_assert_eq!(reduced.num_constraints(), 2);
        for backend in ["simplex", "revised"] {
            let solve = |mm: &Model| {
                if backend == "simplex" {
                    SimplexSolver::new().solve_certified(mm).unwrap()
                } else {
                    RevisedSolver::new().solve_certified(mm).unwrap()
                }
            };
            for (label, model) in [("raw", &m), ("presolved", &reduced)] {
                let (sol, cert) = solve(model);
                prop_assert_eq!(sol.status(), Status::Infeasible, "{}/{}", backend, label);
                let f = audit_solution(model, &sol, cert.as_ref());
                prop_assert!(f.is_empty(), "{}/{}: {:?}", backend, label, f);
            }
        }
    }
}
